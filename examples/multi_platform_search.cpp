/**
 * @file
 * Multi-platform hardware-aware search: train one HW-PR-NAS surrogate
 * per target platform and search the NAS-Bench-201 + FBNet union for
 * each, then compare what kind of architecture each platform's Pareto
 * front prefers — the scenario from the paper's introduction (pick a
 * different model from the front per device).
 */

#include <iostream>

#include "common/table.h"
#include "core/hwprnas.h"
#include "core/surrogate.h"
#include "search/moea.h"
#include "search/report.h"
#include "search/surrogate_evaluator.h"

using namespace hwpr;

namespace
{

/** Fraction of depthwise convolutions in an architecture. */
double
depthwiseShare(const nasbench::Architecture &arch,
               nasbench::DatasetId dataset)
{
    const auto net = nasbench::spaceFor(arch.space).lower(arch, dataset);
    double convs = 0.0, dw = 0.0;
    for (const auto &op : net) {
        if (op.kind == hw::OpKind::Conv) {
            convs += 1.0;
            if (op.isDepthwise())
                dw += 1.0;
        }
    }
    return convs > 0.0 ? dw / convs : 0.0;
}

} // namespace

int
main()
{
    const auto dataset_id = nasbench::DatasetId::Cifar10;
    const std::vector<hw::PlatformId> platforms = {
        hw::PlatformId::EdgeGpu, hw::PlatformId::Pixel3,
        hw::PlatformId::Eyeriss};

    nasbench::Oracle oracle(dataset_id);
    Rng rng(7);
    const auto data = nasbench::SampledDataset::sample(
        {&nasbench::nasBench201(), &nasbench::fbnet()}, oracle, 1000,
        650, 150, rng);

    AsciiTable summary({"platform", "front size", "best acc (%)",
                        "min latency (ms)", "FBNet share (%)",
                        "depthwise conv share (%)"});

    for (hw::PlatformId platform : platforms) {
        std::cout << "Training HW-PR-NAS for "
                  << hw::platformName(platform) << "..." << std::endl;
        core::HwPrNasConfig mc;
        core::HwPrNas model(mc, dataset_id,
                            41 + hw::platformIndex(platform));
        core::TrainConfig tc;
        tc.epochs = 25;
        tc.learningRate = 1e-3;
        model.train(data.select(data.trainIdx),
                    data.select(data.valIdx), platform, tc);

        core::SurrogateEvaluator eval(model);
        search::MoeaConfig sc;
        sc.populationSize = 50;
        sc.maxGenerations = 25;
        sc.simulatedBudgetSeconds = 0.0;
        Rng srng(17);
        const auto result = search::Moea(sc).run(
            search::SearchDomain::unionBenchmarks(), eval, srng);
        const auto front =
            search::measureFront(result, oracle, platform);

        double best_acc = 0.0, min_lat = 1e300;
        double fbnet = 0.0, dw_share = 0.0;
        for (std::size_t i = 0; i < front.front.size(); ++i) {
            best_acc = std::max(best_acc, 100.0 - front.front[i][0]);
            min_lat = std::min(min_lat, front.front[i][1]);
            if (front.frontArchs[i].space == nasbench::SpaceId::FBNet)
                fbnet += 1.0;
            dw_share +=
                depthwiseShare(front.frontArchs[i], dataset_id);
        }
        const double n = double(front.front.size());
        summary.addRow({hw::platformName(platform),
                        std::to_string(front.front.size()),
                        AsciiTable::num(best_acc, 2),
                        AsciiTable::num(min_lat, 3),
                        AsciiTable::num(100.0 * fbnet / n, 1),
                        AsciiTable::num(100.0 * dw_share / n, 1)});
    }

    std::cout << "\nPer-platform Pareto fronts (CIFAR-10):\n"
              << summary.render()
              << "\nMobile CPUs should lean on FBNet's depthwise "
                 "blocks; the GPU and the row-stationary ASIC prefer "
                 "dense convolutions.\n";
    return 0;
}

/**
 * @file
 * Quickstart: train the HW-PR-NAS surrogate on a sampled benchmark
 * dataset, plug it into the multi-objective evolutionary search, and
 * print the resulting Pareto front for one edge platform.
 *
 * Walks the full public API in ~a minute:
 *   oracle -> sampled dataset -> HwPrNas::train -> MOEA -> front.
 */

#include <iostream>

#include "common/stats.h"
#include "common/table.h"
#include "core/hwprnas.h"
#include "pareto/pareto.h"
#include "core/surrogate.h"
#include "search/moea.h"
#include "search/report.h"
#include "search/surrogate_evaluator.h"

using namespace hwpr;

int
main()
{
    const auto dataset_id = nasbench::DatasetId::Cifar10;
    const auto platform = hw::PlatformId::EdgeGpu;
    Rng rng(42);

    // 1. The measurement oracle (accuracy simulator + HW cost model).
    nasbench::Oracle oracle(dataset_id);

    // 2. Sample and split a training dataset from both benchmarks.
    std::cout << "Sampling architectures from NAS-Bench-201 + FBNet..."
              << std::endl;
    const auto data = nasbench::SampledDataset::sample(
        {&nasbench::nasBench201(), &nasbench::fbnet()}, oracle,
        /*total=*/1200, /*train=*/700, /*val=*/200, rng);

    // 3. Train the Pareto rank-preserving surrogate (Table II
    //    hyperparameters, reduced model sizes for the quickstart).
    std::cout << "Training HW-PR-NAS for "
              << hw::platformName(platform) << " / "
              << nasbench::datasetName(dataset_id) << "..."
              << std::endl;
    core::HwPrNas model(core::HwPrNasConfig{}, dataset_id, 7);
    core::TrainConfig tc;
    tc.epochs = 30;
    model.train(data.select(data.trainIdx), data.select(data.valIdx),
                platform, tc);

    // 4. How well does the score preserve the true Pareto ranking?
    const auto test = data.select(data.testIdx);
    std::vector<nasbench::Architecture> test_archs;
    std::vector<pareto::Point> test_points;
    for (const auto *rec : test) {
        test_archs.push_back(rec->arch);
        test_points.push_back(search::trueObjectives(*rec, platform));
    }
    const auto ranks = pareto::paretoRanks(test_points);
    std::vector<double> rank_d(ranks.size());
    for (std::size_t i = 0; i < ranks.size(); ++i)
        rank_d[i] = -double(ranks[i]); // high score should mean rank 1
    const double tau = kendallTau(model.scores(test_archs), rank_d);
    std::cout << "Kendall tau (score vs true Pareto rank) on "
              << test.size() << " test archs: "
              << AsciiTable::num(tau, 3) << std::endl;

    // Branch diagnostics: how well each predictor ranks its metric.
    std::vector<double> true_acc, true_lat;
    for (const auto *rec : test) {
        true_acc.push_back(rec->accuracy);
        true_lat.push_back(
            rec->latencyMs[hw::platformIndex(platform)]);
    }
    std::cout << "  accuracy-branch tau: "
              << AsciiTable::num(
                     kendallTau(model.predictAccuracy(test_archs),
                                true_acc),
                     3)
              << ", latency-branch tau: "
              << AsciiTable::num(
                     kendallTau(model.predictLatency(test_archs),
                                true_lat),
                     3)
              << std::endl;

    // 5. Search with the surrogate as the fitness function.
    core::SurrogateEvaluator evaluator(model);
    search::MoeaConfig mc;
    mc.populationSize = 60;
    mc.maxGenerations = 30;
    mc.simulatedBudgetSeconds = 0.0;
    const auto result =
        search::Moea(mc).run(search::SearchDomain::unionBenchmarks(),
                             evaluator, rng);
    std::cout << "MOEA finished: " << result.stats.evaluations
              << " surrogate evaluations in "
              << AsciiTable::num(result.stats.wallSeconds, 2) << " s"
              << std::endl;

    // 6. Measure the final population and print the true front.
    const auto report =
        search::measureFront(result, oracle, platform);
    AsciiTable table({"architecture", "accuracy (%)", "latency (ms)"});
    for (std::size_t i = 0; i < report.front.size(); ++i) {
        const auto &arch = report.frontArchs[i];
        table.addRow({
            nasbench::spaceFor(arch.space).toString(arch),
            AsciiTable::num(100.0 - report.front[i][0], 2),
            AsciiTable::num(report.front[i][1], 3),
        });
    }
    std::cout << "\nTrue Pareto front of the final population ("
              << report.front.size() << " architectures):\n"
              << table.render() << std::endl;

    const auto ref = pareto::nadirReference(report.objectives, 0.1);
    std::cout << "Hypervolume of the front: "
              << AsciiTable::num(pareto::hypervolume(report.front, ref),
                                 1)
              << std::endl;
    return 0;
}

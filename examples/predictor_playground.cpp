/**
 * @file
 * Predictor playground: train single-metric performance predictors
 * with different encodings (AF / LSTM / GCN, paper Fig. 4) and
 * regressors (MLP / XGBoost / LGBoost, paper Table I) and compare
 * their ranking quality — the workflow for choosing the surrogate
 * ingredients before assembling a full HW-PR-NAS model.
 */

#include <cmath>
#include <iostream>

#include "common/table.h"
#include "core/predictor.h"

using namespace hwpr;

int
main()
{
    const auto dataset_id = nasbench::DatasetId::Cifar10;
    const auto platform = hw::PlatformId::Pixel3;
    const std::size_t pidx = hw::platformIndex(platform);

    nasbench::Oracle oracle(dataset_id);
    Rng rng(13);
    const auto data = nasbench::SampledDataset::sample(
        {&nasbench::nasBench201()}, oracle, 900, 600, 150, rng);
    const auto train = data.select(data.trainIdx);
    const auto val = data.select(data.valIdx);
    const auto test = data.select(data.testIdx);

    const core::TargetFn accuracy =
        [](const nasbench::ArchRecord &r) { return r.accuracy; };
    const core::TargetFn latency =
        [pidx](const nasbench::ArchRecord &r) {
            return std::log(r.latencyMs[pidx]);
        };

    core::PredictorTrainConfig cfg;
    cfg.epochs = 30;
    cfg.lr = 1.5e-3;

    AsciiTable table({"predictor", "encoding", "regressor",
                      "Kendall tau", "RMSE"});
    std::uint64_t seed = 50;

    const auto run = [&](const std::string &label,
                         core::EncodingKind enc,
                         core::RegressorKind reg,
                         const core::TargetFn &target) {
        core::MetricPredictor pred(enc, core::EncoderConfig::fast(),
                                   reg, dataset_id, ++seed);
        pred.train(train, val, target, cfg);
        const auto q = core::evaluatePredictor(pred, test, target);
        table.addRow({label, core::encodingName(enc),
                      core::regressorName(reg),
                      AsciiTable::num(q.kendall, 3),
                      AsciiTable::num(q.rmse, 3)});
    };

    std::cout << "Training accuracy predictors (3 encodings x MLP, "
                 "plus tree regressors)..."
              << std::endl;
    run("accuracy", core::EncodingKind::AF, core::RegressorKind::Mlp,
        accuracy);
    run("accuracy", core::EncodingKind::GCN, core::RegressorKind::Mlp,
        accuracy);
    run("accuracy", core::EncodingKind::GCN_AF,
        core::RegressorKind::Mlp, accuracy);
    run("accuracy", core::EncodingKind::GCN_AF,
        core::RegressorKind::XGBoost, accuracy);

    std::cout << "Training latency predictors for "
              << hw::platformName(platform) << "..." << std::endl;
    run("latency", core::EncodingKind::AF, core::RegressorKind::Mlp,
        latency);
    run("latency", core::EncodingKind::LSTM_AF,
        core::RegressorKind::Mlp, latency);
    run("latency", core::EncodingKind::LSTM_AF,
        core::RegressorKind::LGBoost, latency);

    std::cout << "\n" << table.render()
              << "\nThe paper's recipe: GCN(+AF) encodes accuracy "
                 "best (it sees the cell wiring), LSTM(+AF) encodes "
                 "latency best, and tree regressors are competitive "
                 "with the MLP at a fraction of the training cost.\n";
    return 0;
}

/**
 * @file
 * Extended nn coverage: shape-parameterized gradient checks for the
 * composite modules, optimizer trajectory properties, schedule
 * integration with training, and numerical-stability edge cases the
 * core suites don't reach.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/gcn.h"
#include "nn/gradcheck.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/lstm.h"
#include "nn/optim.h"

using namespace hwpr;
using namespace hwpr::nn;

namespace
{

Matrix
randomMatrix(std::size_t r, std::size_t c, Rng &rng)
{
    Matrix m(r, c);
    for (double &v : m.raw())
        v = rng.normal();
    return m;
}

} // namespace

/** MLP gradcheck across depths and activations. */
class MlpGradCheck
    : public ::testing::TestWithParam<std::tuple<int, Activation>>
{
};

TEST_P(MlpGradCheck, FullModelGradientsMatch)
{
    const auto [depth, act] = GetParam();
    Rng rng(7 + depth);
    MlpConfig cfg;
    cfg.inDim = 4;
    cfg.hidden.assign(std::size_t(depth), 5);
    cfg.outDim = 1;
    cfg.activation = act;
    Mlp mlp(cfg, rng);

    Tensor x = Tensor::constant(randomMatrix(6, 4, rng));
    const std::vector<double> y = {0.1, -0.2, 0.3, 0.0, 1.0, -1.0};
    for (Tensor p : mlp.params()) {
        const double err = gradCheck(
            [&] { return mseLoss(mlp.forward(x), y); }, p, 1e-5);
        // ReLU kinks can inflate the numeric error slightly.
        EXPECT_LT(err, act == Activation::ReLU ? 1e-3 : 1e-5)
            << p.name();
    }
}

INSTANTIATE_TEST_SUITE_P(
    DepthsAndActivations, MlpGradCheck,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(Activation::Tanh,
                                         Activation::ReLU,
                                         Activation::Sigmoid)));

TEST(LstmExtra, PaddedSequencesStillInformative)
{
    // The NB201 token stream ends with 16 PAD tokens; the encoder
    // must still separate inputs that differ only in the prefix.
    Rng rng(11);
    LstmConfig cfg;
    cfg.vocab = 6;
    cfg.embedDim = 6;
    cfg.hidden = 10;
    cfg.layers = 2;
    LstmEncoder lstm(cfg, rng);
    std::vector<std::size_t> seq_a(22, 0), seq_b(22, 0);
    for (int i = 0; i < 6; ++i) {
        seq_a[std::size_t(i)] = 1;
        seq_b[std::size_t(i)] = 2;
    }
    const Tensor out = lstm.forward({seq_a, seq_b});
    double diff = 0.0;
    for (std::size_t j = 0; j < out.cols(); ++j)
        diff += std::abs(out.value()(0, j) - out.value()(1, j));
    EXPECT_GT(diff, 1e-4);
}

TEST(LstmExtra, BatchMatchesSingle)
{
    // Batched evaluation must equal per-sequence evaluation.
    Rng rng(12);
    LstmConfig cfg;
    cfg.vocab = 5;
    cfg.embedDim = 4;
    cfg.hidden = 6;
    cfg.layers = 2;
    LstmEncoder lstm(cfg, rng);
    const std::vector<std::size_t> s1 = {0, 1, 2, 3, 4};
    const std::vector<std::size_t> s2 = {4, 3, 2, 1, 0};
    const Tensor both = lstm.forward({s1, s2});
    const Tensor only1 = lstm.forward({s1});
    const Tensor only2 = lstm.forward({s2});
    for (std::size_t j = 0; j < both.cols(); ++j) {
        EXPECT_NEAR(both.value()(0, j), only1.value()(0, j), 1e-12);
        EXPECT_NEAR(both.value()(1, j), only2.value()(0, j), 1e-12);
    }
}

TEST(GcnExtra, BatchMatchesSingle)
{
    Rng rng(13);
    GcnConfig cfg;
    cfg.featDim = 4;
    cfg.hidden = 6;
    cfg.layers = 2;
    GcnEncoder gcn(cfg, rng);

    auto make = [&](int kind) {
        GraphInput g;
        Matrix raw(3, 3);
        raw(0, 1) = raw(1, 0) = 1.0;
        if (kind)
            raw(1, 2) = raw(2, 1) = 1.0;
        g.adjacency = GcnEncoder::normalizeAdjacency(raw);
        g.features = Matrix(3, 4);
        g.features(0, 0) = 1.0;
        g.features(1, std::size_t(1 + kind)) = 1.0;
        g.features(2, 3) = 1.0;
        g.globalNode = 2;
        return g;
    };
    const auto g1 = make(0), g2 = make(1);
    const Tensor both = gcn.forward({g1, g2});
    const Tensor only1 = gcn.forward({g1});
    const Tensor only2 = gcn.forward({g2});
    for (std::size_t j = 0; j < both.cols(); ++j) {
        EXPECT_NEAR(both.value()(0, j), only1.value()(0, j), 1e-12);
        EXPECT_NEAR(both.value()(1, j), only2.value()(0, j), 1e-12);
    }
}

TEST(OptimExtra, AdamConvergesOnQuadratic)
{
    // Minimize ||p - target||^2; Adam must reach the optimum.
    Tensor p = Tensor::param(Matrix(1, 3, {5.0, -3.0, 0.5}), "p");
    const std::vector<double> target = {1.0, 2.0, -1.0};
    Adam opt({p}, 0.05);
    for (int i = 0; i < 2000; ++i) {
        opt.zeroGrad();
        Tensor diff = sub(p, Tensor::constant(
                                 Matrix(1, 3, {1.0, 2.0, -1.0})));
        Tensor loss = sumAll(mul(diff, diff));
        backward(loss);
        opt.step();
    }
    for (int j = 0; j < 3; ++j)
        EXPECT_NEAR(p.value()(0, j), target[std::size_t(j)], 1e-3);
}

TEST(OptimExtra, WeightDecayShrinksUnusedDirections)
{
    // AdamW decays parameters that receive no gradient; plain Adam
    // does not.
    Tensor p1 = Tensor::param(Matrix(1, 1, {1.0}), "p1");
    Tensor p2 = Tensor::param(Matrix(1, 1, {1.0}), "p2");
    AdamW decayed({p1}, 0.01, 0.1);
    Adam plain({p2}, 0.01);
    for (int i = 0; i < 100; ++i) {
        p1.zeroGrad();
        p2.zeroGrad();
        decayed.step();
        plain.step();
    }
    EXPECT_LT(p1.value()(0, 0), 0.95);
    EXPECT_DOUBLE_EQ(p2.value()(0, 0), 1.0);
}

TEST(OptimExtra, CosineScheduleImprovesFinalLoss)
{
    // Annealed training should land at least as low as fixed-lr on a
    // simple convex problem with a deliberately hot initial lr.
    auto train = [&](bool annealed) {
        Rng rng(14);
        Tensor p = Tensor::param(randomMatrix(1, 4, rng), "p");
        Sgd opt({p}, 0.5);
        CosineAnnealing schedule(0.5, 200, 1e-3);
        double last = 0.0;
        for (int i = 0; i < 200; ++i) {
            if (annealed)
                opt.setLearningRate(schedule.at(std::size_t(i)));
            p.zeroGrad();
            Tensor loss = sumAll(mul(p, p));
            backward(loss);
            opt.step();
            last = loss.value()(0, 0);
        }
        return last;
    };
    EXPECT_LE(train(true), train(false) + 1e-9);
}

TEST(LossExtra, HingeMarginZeroDegeneratesToSignAgreement)
{
    Tensor s = Tensor::param(Matrix(2, 1, {1.0, 0.0}), "s");
    // Correct order, margin 0: loss is exactly 0.
    EXPECT_DOUBLE_EQ(
        pairwiseHingeLoss(s, {2.0, 1.0}, 0.0).value()(0, 0), 0.0);
}

TEST(LossExtra, ListMleHandlesAllTies)
{
    // A batch where everything shares rank 1 (a perfect front):
    // every ordering is equally likely; loss is finite and the
    // gradient does not blow up.
    Rng rng(15);
    Tensor s = Tensor::param(randomMatrix(6, 1, rng), "s");
    const std::vector<int> ranks(6, 1);
    Tensor loss = listMleParetoLoss(s, ranks);
    EXPECT_TRUE(std::isfinite(loss.value()(0, 0)));
    backward(loss);
    for (double g : s.grad().raw())
        EXPECT_TRUE(std::isfinite(g));
}

TEST(LossExtra, ListMleLargeScoresStayFinite)
{
    // Numerical stability: huge score magnitudes must not overflow
    // (the implementation shifts by the max).
    Tensor s = Tensor::param(
        Matrix(3, 1, {1e4, -1e4, 0.0}), "s");
    Tensor loss = listMleParetoLoss(s, {1, 2, 3});
    EXPECT_TRUE(std::isfinite(loss.value()(0, 0)));
    backward(loss);
    for (double g : s.grad().raw())
        EXPECT_TRUE(std::isfinite(g));
}

TEST(ModuleExtra, ZeroGradClearsEverything)
{
    Rng rng(16);
    MlpConfig cfg;
    cfg.inDim = 3;
    cfg.hidden = {4};
    cfg.outDim = 1;
    Mlp mlp(cfg, rng);
    Tensor x = Tensor::constant(randomMatrix(2, 3, rng));
    backward(meanAll(mlp.forward(x)));
    mlp.zeroGrad();
    for (const auto &p : mlp.params())
        for (double g : p.grad().raw())
            EXPECT_DOUBLE_EQ(g, 0.0);
}

/**
 * @file
 * hwpr-serve tests: frame codec, wire validation, end-to-end socket
 * round trips against a live server, graceful-drain semantics, and
 * the resumable job manager's bit-identical pause/resume contract.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>

#include "baselines/lut.h"
#include "common/json.h"
#include "core/dominance.h"
#include "nasbench/dataset.h"
#include "nasbench/space.h"
#include "serve/jobs.h"
#include "serve/proto.h"
#include "serve/server.h"

using namespace hwpr;

namespace
{

/** Valid deterministic genome for @p space_id (gene = pos % options). */
nasbench::Architecture
sampleArch(nasbench::SpaceId space_id, int salt = 0)
{
    const auto &space = nasbench::spaceFor(space_id);
    nasbench::Architecture arch;
    arch.space = space_id;
    for (std::size_t pos = 0; pos < space.genomeLength(); ++pos)
        arch.genome.push_back(
            int((pos + std::size_t(salt)) % space.numOptions(pos)));
    return arch;
}

std::string
archJson(const nasbench::Architecture &arch)
{
    std::string out = "{\"space\": \"";
    out += serve::spaceName(arch.space);
    out += "\", \"genome\": [";
    for (std::size_t i = 0; i < arch.genome.size(); ++i) {
        if (i != 0)
            out += ", ";
        out += std::to_string(arch.genome[i]);
    }
    out += "]}";
    return out;
}

/** Blocking test client speaking the length-prefixed protocol. */
class Client
{
  public:
    explicit Client(int port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(std::uint16_t(port));
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        connected_ =
            ::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0;
    }
    ~Client()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool connected() const { return connected_; }

    void
    send(const std::string &payload)
    {
        const std::string frame = serve::encodeFrame(payload);
        std::size_t off = 0;
        while (off < frame.size()) {
            const ssize_t n = ::write(fd_, frame.data() + off,
                                      frame.size() - off);
            ASSERT_GT(n, 0);
            off += std::size_t(n);
        }
    }

    std::string
    recv()
    {
        std::string header = readExact(4);
        if (header.size() != 4)
            return "";
        const auto *p =
            reinterpret_cast<const unsigned char *>(header.data());
        const std::size_t len = (std::size_t(p[0]) << 24) |
                                (std::size_t(p[1]) << 16) |
                                (std::size_t(p[2]) << 8) |
                                std::size_t(p[3]);
        return readExact(len);
    }

    json::Value
    roundTrip(const std::string &payload)
    {
        send(payload);
        return json::parse(recv());
    }

  private:
    std::string
    readExact(std::size_t n)
    {
        std::string out;
        while (out.size() < n) {
            char buf[4096];
            const ssize_t got = ::read(
                fd_, buf, std::min(sizeof(buf), n - out.size()));
            if (got <= 0)
                return out;
            out.append(buf, std::size_t(got));
        }
        return out;
    }

    int fd_ = -1;
    bool connected_ = false;
};

/** Server on an ephemeral port with its run() loop on a thread. */
class LiveServer
{
  public:
    LiveServer(const core::Surrogate &model, serve::ServerConfig cfg)
        : server_(model, std::move(cfg))
    {
        std::string err;
        started_ = server_.start(err);
        EXPECT_TRUE(started_) << err;
        if (started_)
            thread_ = std::thread([this] { server_.run(); });
    }
    ~LiveServer() { stop(); }

    void
    stop()
    {
        if (thread_.joinable()) {
            server_.requestStop();
            thread_.join();
        }
    }

    int port() const { return server_.port(); }
    serve::Server &server() { return server_; }

  private:
    serve::Server server_;
    bool started_ = false;
    std::thread thread_;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

template <typename Pred>
bool
waitFor(Pred pred, int timeout_ms = 30000)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
}

} // namespace

// --------------------------------------------------------------------
// Frame codec

TEST(ServeProto, FrameRoundTripSurvivesBytewiseDelivery)
{
    const std::string a = "{\"op\": \"ping\"}";
    const std::string b = "{\"op\": \"stats\", \"id\": 7}";
    const std::string wire =
        serve::encodeFrame(a) + serve::encodeFrame(b);

    serve::FrameReader reader;
    std::vector<std::string> got;
    std::string payload;
    for (const char c : wire) { // worst-case fragmentation
        reader.feed(&c, 1);
        while (reader.next(payload))
            got.push_back(payload);
    }
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], a);
    EXPECT_EQ(got[1], b);
    EXPECT_FALSE(reader.poisoned());

    // Both frames in one feed() call.
    serve::FrameReader bulk;
    bulk.feed(wire.data(), wire.size());
    got.clear();
    while (bulk.next(payload))
        got.push_back(payload);
    EXPECT_EQ(got.size(), 2u);

    // Empty payload is a legal frame.
    serve::FrameReader empty;
    const std::string ef = serve::encodeFrame("");
    empty.feed(ef.data(), ef.size());
    ASSERT_TRUE(empty.next(payload));
    EXPECT_TRUE(payload.empty());
}

TEST(ServeProto, OversizeFramePoisonsTheStream)
{
    serve::FrameReader reader;
    const char huge[4] = {0x7f, 0x7f, 0x7f, 0x7f}; // ~2 GB declared
    reader.feed(huge, 4);
    std::string payload;
    EXPECT_FALSE(reader.next(payload));
    EXPECT_TRUE(reader.poisoned());
    // Poisoned readers stay poisoned even if more bytes arrive.
    const std::string ok = serve::encodeFrame("{}");
    reader.feed(ok.data(), ok.size());
    EXPECT_FALSE(reader.next(payload));
}

// --------------------------------------------------------------------
// Wire validation

TEST(ServeProto, ParseArchsRejectsEveryMalformation)
{
    std::vector<nasbench::Architecture> out;
    std::string err;
    const auto &nb = nasbench::nasBench201();

    const auto tryParse = [&](const std::string &body) {
        const json::Value req = json::parse(body);
        err.clear();
        return serve::parseArchs(req, out, err);
    };

    EXPECT_FALSE(tryParse("{\"op\": \"predict\"}"));
    EXPECT_NE(err.find("archs"), std::string::npos);

    EXPECT_FALSE(tryParse("{\"archs\": [42]}"));
    EXPECT_FALSE(tryParse(
        "{\"archs\": [{\"space\": \"resnet\", \"genome\": []}]}"));
    EXPECT_NE(err.find("unknown space"), std::string::npos);

    EXPECT_FALSE(tryParse(
        "{\"archs\": [{\"space\": \"nb201\", \"genome\": [0]}]}"));
    EXPECT_NE(err.find("length"), std::string::npos);

    // Right length, gene out of range / non-integer.
    std::string genome = "[99";
    for (std::size_t i = 1; i < nb.genomeLength(); ++i)
        genome += ", 0";
    genome += "]";
    EXPECT_FALSE(tryParse("{\"archs\": [{\"space\": \"nb201\", "
                          "\"genome\": " +
                          genome + "}]}"));
    EXPECT_NE(err.find("out of range"), std::string::npos);

    genome = "[0.5";
    for (std::size_t i = 1; i < nb.genomeLength(); ++i)
        genome += ", 0";
    genome += "]";
    EXPECT_FALSE(tryParse("{\"archs\": [{\"space\": \"nb201\", "
                          "\"genome\": " +
                          genome + "}]}"));

    // Overflowing numeric literals never reach parseArchs: the json
    // reader itself rejects them (strtod would saturate 1e400 to inf,
    // which would then masquerade as a gene value here).
    EXPECT_THROW(tryParse("{\"archs\": [{\"space\": \"nb201\", "
                          "\"genome\": [1e400]}]}"),
                 std::runtime_error);

    // And the happy path still parses.
    const auto arch = sampleArch(nasbench::SpaceId::NasBench201, 1);
    EXPECT_TRUE(tryParse("{\"archs\": [" + archJson(arch) + "]}"));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].genome, arch.genome);
}

// --------------------------------------------------------------------
// End-to-end over a real socket

TEST(ServeServer, PredictAndRankMatchDirectBatchCalls)
{
    baselines::LatencyLut model(nasbench::DatasetId::Cifar10,
                                hw::PlatformId::EdgeGpu);
    std::vector<nasbench::Architecture> archs = {
        sampleArch(nasbench::SpaceId::NasBench201, 0),
        sampleArch(nasbench::SpaceId::NasBench201, 1),
        sampleArch(nasbench::SpaceId::FBNet, 2),
    };
    // Reference values computed before the server owns the model.
    core::BatchPlan plan;
    const Matrix &direct = model.predictBatch(archs, plan);
    std::vector<double> expect;
    for (std::size_t r = 0; r < archs.size(); ++r)
        expect.push_back(direct(r, 0));

    serve::ServerConfig cfg;
    cfg.batchDeadlineUs = 0; // flush every iteration: simple timing
    LiveServer live(model, cfg);
    Client client(live.port());
    ASSERT_TRUE(client.connected());

    std::string req =
        "{\"op\": \"predict\", \"id\": \"r1\", \"archs\": [";
    for (std::size_t i = 0; i < archs.size(); ++i)
        req += (i != 0 ? ", " : "") + archJson(archs[i]);
    req += "]}";
    const json::Value resp = client.roundTrip(req);
    ASSERT_TRUE(resp.find("ok") != nullptr);
    EXPECT_EQ(resp.stringOr("id", ""), "r1");
    const json::Value *preds = resp.find("predictions");
    ASSERT_NE(preds, nullptr);
    ASSERT_EQ(preds->asArray().size(), archs.size());
    for (std::size_t r = 0; r < archs.size(); ++r) {
        const auto &row = preds->asArray()[r].asArray();
        ASSERT_EQ(row.size(), 1u);
        // %.17g survives the double round trip bit-exactly.
        EXPECT_EQ(row[0].asNumber(), expect[r]);
    }

    // rank returns the same values for the LUT (memoized estimates).
    const json::Value ranked = client.roundTrip(
        "{\"op\": \"rank\", \"id\": 2, \"archs\": [" +
        archJson(archs[0]) + "]}");
    const json::Value *rrows = ranked.find("predictions");
    ASSERT_NE(rrows, nullptr);
    EXPECT_EQ(rrows->asArray()[0].asArray()[0].asNumber(),
              expect[0]);

    // Empty batch: a well-defined no-op end to end (satellite 1).
    const json::Value none =
        client.roundTrip("{\"op\": \"predict\", \"archs\": []}");
    ASSERT_NE(none.find("predictions"), nullptr);
    EXPECT_TRUE(none.find("predictions")->asArray().empty());
}

TEST(ServeServer, MalformedRequestsGetErrorsNotDisconnects)
{
    baselines::LatencyLut model(nasbench::DatasetId::Cifar10,
                                hw::PlatformId::EdgeGpu);
    serve::ServerConfig cfg;
    cfg.batchDeadlineUs = 0;
    LiveServer live(model, cfg);
    Client client(live.port());
    ASSERT_TRUE(client.connected());

    json::Value resp = client.roundTrip("this is not json");
    EXPECT_NE(resp.find("error"), nullptr);

    resp = client.roundTrip("{\"op\": \"frobnicate\", \"id\": 9}");
    EXPECT_NE(resp.find("error"), nullptr);
    EXPECT_EQ(resp.numberOr("id", 0.0), 9.0);

    resp = client.roundTrip(
        "{\"op\": \"predict\", \"archs\": [{\"space\": \"bogus\", "
        "\"genome\": []}]}");
    EXPECT_NE(resp.find("error"), nullptr);

    // search without --jobs-dir is an error, not a crash.
    resp = client.roundTrip(
        "{\"op\": \"search\", \"job\": \"j1\"}");
    EXPECT_NE(resp.find("error"), nullptr);

    // A numeric literal that overflows double gets an error response
    // at parse time instead of silently becoming inf downstream.
    resp = client.roundTrip(
        "{\"op\": \"predict\", \"archs\": [{\"space\": \"nb201\", "
        "\"genome\": [1e400]}]}");
    EXPECT_NE(resp.find("error"), nullptr);

    // The connection survived all of it.
    resp = client.roundTrip("{\"op\": \"ping\"}");
    EXPECT_EQ(resp.stringOr("op", ""), "ping");

    // stats exposes the error counter we just incremented.
    resp = client.roundTrip("{\"op\": \"stats\"}");
    EXPECT_NE(resp.find("stats"), nullptr);
    EXPECT_NE(resp.find("jobs"), nullptr);
}

TEST(ServeServer, ShutdownDrainsQueuedRequestsBeforeExiting)
{
    baselines::LatencyLut model(nasbench::DatasetId::Cifar10,
                                hw::PlatformId::EdgeGpu);
    serve::ServerConfig cfg;
    // Deadline far in the future: only the drain can flush this.
    cfg.batchDeadlineUs = 60'000'000;
    cfg.batchMaxArchs = 1u << 20;
    LiveServer live(model, cfg);
    Client client(live.port());
    ASSERT_TRUE(client.connected());

    const auto arch = sampleArch(nasbench::SpaceId::NasBench201, 3);
    client.send("{\"op\": \"predict\", \"id\": \"queued\", "
                "\"archs\": [" +
                archJson(arch) + "]}");
    client.send("{\"op\": \"shutdown\"}");

    // Both must be answered before the loop exits: the shutdown ack
    // and the queued predict (flushed by quiet-poll batching or by
    // the drain on the way out, depending on frame arrival timing).
    bool sawShutdown = false, sawPredict = false;
    for (int i = 0; i < 2; ++i) {
        const json::Value resp = json::parse(client.recv());
        if (resp.stringOr("op", "") == "shutdown") {
            sawShutdown = true;
        } else {
            EXPECT_EQ(resp.stringOr("id", ""), "queued");
            ASSERT_NE(resp.find("predictions"), nullptr);
            EXPECT_EQ(resp.find("predictions")->asArray().size(),
                      1u);
            sawPredict = true;
        }
    }
    EXPECT_TRUE(sawShutdown);
    EXPECT_TRUE(sawPredict);
    live.stop();
}

TEST(ServeServer, SigtermMidRequestStillDrainsAndReturns)
{
    baselines::LatencyLut model(nasbench::DatasetId::Cifar10,
                                hw::PlatformId::EdgeGpu);
    serve::ServerConfig cfg;
    // Deadline far in the future: only quiet-poll batching or the
    // drain can flush the queued request.
    cfg.batchDeadlineUs = 60'000'000;
    cfg.batchMaxArchs = 1u << 20;

    serve::Server server(model, cfg);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;
    // The real handlers the daemon installs: sigaction without
    // SA_RESTART, pointing at requestStop().
    serve::installStopSignalHandlers(server);
    std::atomic<bool> done{false};
    std::thread loop([&] {
        server.run();
        done.store(true);
    });

    Client client(server.port());
    ASSERT_TRUE(client.connected());
    const auto arch = sampleArch(nasbench::SpaceId::NasBench201, 5);
    client.send("{\"op\": \"predict\", \"id\": \"inflight\", "
                "\"archs\": [" +
                archJson(arch) + "]}");
    // Let the loop read the frame, then deliver a real SIGTERM to the
    // process (regression for the std::signal wiring, whose
    // implementation-defined restart/one-shot semantics made the
    // drain unreliable).
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ASSERT_EQ(::kill(::getpid(), SIGTERM), 0);

    // The in-flight request is still answered on the way out...
    const std::string raw = client.recv();
    ASSERT_FALSE(raw.empty());
    const json::Value resp = json::parse(raw);
    EXPECT_EQ(resp.stringOr("id", ""), "inflight");
    ASSERT_NE(resp.find("predictions"), nullptr);
    EXPECT_EQ(resp.find("predictions")->asArray().size(), 1u);

    // ...and run() returns on its own, with no further nudging.
    EXPECT_TRUE(waitFor([&] { return done.load(); }));
    loop.join();
    serve::clearStopSignalHandlers();
}

TEST(ServeServer, DominanceCheckpointServedWithBitwiseParity)
{
    // Train a tiny dominance classifier, round-trip it through the
    // kind->loader registry, and serve the *loaded* model: the wire
    // responses must match direct predictBatch/rankBatch calls bit
    // for bit (%.17g survives the double round trip exactly).
    static nasbench::Oracle oracle(nasbench::DatasetId::Cifar10);
    Rng rng(91);
    const auto data = nasbench::SampledDataset::sample(
        {&nasbench::nasBench201(), &nasbench::fbnet()}, oracle, 120,
        80, 20, rng);

    core::DominanceConfig dcfg;
    dcfg.encoder.gcnHidden = 16; // multiples of 4: lane-phase safe
    dcfg.encoder.lstmHidden = 16;
    dcfg.encoder.embedDim = 8;
    dcfg.headHidden = {16, 8};
    dcfg.referenceSize = 16;
    dcfg.maxPairsPerEpoch = 1500;
    dcfg.maxValPairs = 300;
    core::DominanceSurrogate trainer(
        dcfg, nasbench::DatasetId::Cifar10, 7);
    core::TrainConfig tc;
    tc.epochs = 2;
    tc.patience = 2;
    tc.batchSize = 64;
    trainer.train(data.select(data.trainIdx),
                  data.select(data.valIdx), hw::PlatformId::EdgeGpu,
                  tc);

    const std::string ckpt =
        ::testing::TempDir() + "serve_dominance.ckpt";
    ASSERT_TRUE(trainer.save(ckpt));
    const auto model = core::loadSurrogate(ckpt);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->familyLabel(), "dominance");

    std::vector<nasbench::Architecture> archs = {
        sampleArch(nasbench::SpaceId::NasBench201, 0),
        sampleArch(nasbench::SpaceId::NasBench201, 4),
        sampleArch(nasbench::SpaceId::FBNet, 2),
    };
    core::BatchPlan plan;
    const Matrix &direct = model->predictBatch(archs, plan);
    std::vector<double> expect;
    for (std::size_t r = 0; r < archs.size(); ++r)
        expect.push_back(direct(r, 0));

    serve::ServerConfig cfg;
    cfg.batchDeadlineUs = 0;
    LiveServer live(*model, cfg);
    Client client(live.port());
    ASSERT_TRUE(client.connected());

    std::string req = "{\"op\": \"predict\", \"archs\": [";
    for (std::size_t i = 0; i < archs.size(); ++i)
        req += (i != 0 ? ", " : "") + archJson(archs[i]);
    req += "]}";
    const json::Value resp = client.roundTrip(req);
    const json::Value *preds = resp.find("predictions");
    ASSERT_NE(preds, nullptr);
    ASSERT_EQ(preds->asArray().size(), archs.size());
    for (std::size_t r = 0; r < archs.size(); ++r) {
        const auto &row = preds->asArray()[r].asArray();
        ASSERT_EQ(row.size(), 1u);
        EXPECT_EQ(row[0].asNumber(), expect[r]);
        // Scores are mean dominance probabilities: in (0, 1).
        EXPECT_GT(row[0].asNumber(), 0.0);
        EXPECT_LT(row[0].asNumber(), 1.0);
    }

    // The rank path is the memoized-encoder fast path; for the
    // dominance family it is bit-identical to predict (fp64 head).
    const json::Value ranked = client.roundTrip(
        "{\"op\": \"rank\", \"archs\": [" + archJson(archs[0]) +
        ", " + archJson(archs[2]) + "]}");
    const json::Value *rrows = ranked.find("predictions");
    ASSERT_NE(rrows, nullptr);
    EXPECT_EQ(rrows->asArray()[0].asArray()[0].asNumber(), expect[0]);
    EXPECT_EQ(rrows->asArray()[1].asArray()[0].asNumber(), expect[2]);
}

TEST(ServeServer, MicroBatchCoalescingPreservesPerRequestAnswers)
{
    baselines::LatencyLut model(nasbench::DatasetId::Cifar10,
                                hw::PlatformId::EdgeGpu);
    std::vector<nasbench::Architecture> archs;
    for (int i = 0; i < 6; ++i)
        archs.push_back(
            sampleArch(nasbench::SpaceId::NasBench201, i));
    core::BatchPlan plan;
    const Matrix &direct = model.predictBatch(archs, plan);
    std::vector<double> expect;
    for (std::size_t r = 0; r < archs.size(); ++r)
        expect.push_back(direct(r, 0));

    serve::ServerConfig cfg; // default 1ms deadline: coalesce
    LiveServer live(model, cfg);
    Client client(live.port());
    ASSERT_TRUE(client.connected());

    // Six single-arch requests back to back land in one (or a few)
    // fused batches; each response must still carry its own row.
    for (std::size_t i = 0; i < archs.size(); ++i)
        client.send("{\"op\": \"predict\", \"id\": " +
                    std::to_string(i) + ", \"archs\": [" +
                    archJson(archs[i]) + "]}");
    std::vector<bool> seen(archs.size(), false);
    for (std::size_t i = 0; i < archs.size(); ++i) {
        const json::Value resp = json::parse(client.recv());
        const auto idx = std::size_t(resp.numberOr("id", -1.0));
        ASSERT_LT(idx, archs.size());
        EXPECT_FALSE(seen[idx]);
        seen[idx] = true;
        const json::Value *preds = resp.find("predictions");
        ASSERT_NE(preds, nullptr);
        EXPECT_EQ(preds->asArray()[0].asArray()[0].asNumber(),
                  expect[idx]);
    }
}

// --------------------------------------------------------------------
// Resumable jobs

TEST(ServeJobs, SpecValidationRejectsBadInput)
{
    serve::JobSpec spec;
    std::string err;
    EXPECT_FALSE(serve::validateJobSpec(spec, err)); // empty id
    spec.id = "job-1";
    EXPECT_TRUE(serve::validateJobSpec(spec, err));
    spec.id = "../escape";
    EXPECT_FALSE(serve::validateJobSpec(spec, err));
    spec.id = "ok_id";
    spec.population = 1;
    EXPECT_FALSE(serve::validateJobSpec(spec, err));
    spec.population = 8;
    spec.space = "imagenet";
    EXPECT_FALSE(serve::validateJobSpec(spec, err));
}

TEST(ServeJobs, JobRunsToCompletionAndPersistsAResult)
{
    baselines::LatencyLut model(nasbench::DatasetId::Cifar10,
                                hw::PlatformId::EdgeGpu);
    const std::string dir = freshDir("hwpr_serve_jobs_basic");
    serve::JobManager jm(model, dir);
    jm.recover();
    jm.start();

    serve::JobSpec spec;
    spec.id = "basic";
    spec.population = 8;
    spec.generations = 3;
    spec.seed = 11;
    spec.space = "nb201";
    std::string err;
    ASSERT_TRUE(jm.submit(spec, err)) << err;
    // Duplicate ids are rejected while the first is still live.
    EXPECT_FALSE(jm.submit(spec, err));

    serve::JobStatus st;
    ASSERT_TRUE(waitFor([&] {
        return jm.status("basic", st) && st.state == "done";
    })) << "state=" << st.state << " err=" << st.error;
    EXPECT_EQ(st.generationsDone, spec.generations);
    jm.stop();

    const std::string body = readFile(jm.resultPath("basic"));
    ASSERT_FALSE(body.empty());
    const json::Value v = json::parse(body);
    EXPECT_EQ(v.stringOr("id", ""), "basic");
    EXPECT_EQ(v.numberOr("generations", 0.0), 3.0);
    ASSERT_NE(v.find("archs"), nullptr);
    EXPECT_EQ(v.find("archs")->asArray().size(), spec.population);
}

TEST(ServeJobs, PausedJobResumesToABitIdenticalResult)
{
    baselines::LatencyLut model(nasbench::DatasetId::Cifar10,
                                hw::PlatformId::EdgeGpu);
    serve::JobSpec spec;
    spec.id = "resume";
    spec.population = 8;
    spec.generations = 5;
    spec.seed = 23;
    spec.space = "nb201";
    std::string err;

    // Reference: uninterrupted run.
    const std::string dirA = freshDir("hwpr_serve_jobs_ref");
    std::string refBody;
    {
        serve::JobManager jm(model, dirA);
        jm.recover();
        jm.start();
        ASSERT_TRUE(jm.submit(spec, err)) << err;
        serve::JobStatus st;
        ASSERT_TRUE(waitFor([&] {
            return jm.status("resume", st) && st.state == "done";
        }));
        jm.stop();
        refBody = readFile(jm.resultPath("resume"));
        ASSERT_FALSE(refBody.empty());
    }

    // Interrupted run: stop mid-job (graceful pause at a slice
    // boundary), then a fresh manager recovers and finishes it.
    const std::string dirB = freshDir("hwpr_serve_jobs_resume");
    {
        serve::JobManager jm(model, dirB);
        jm.recover();
        jm.start();
        ASSERT_TRUE(jm.submit(spec, err)) << err;
        serve::JobStatus st;
        ASSERT_TRUE(waitFor([&] {
            return jm.status("resume", st) &&
                   (st.generationsDone >= 1 || st.state == "done");
        }));
        jm.stop(); // pauses unless it already finished
        ASSERT_TRUE(jm.status("resume", st));
        EXPECT_TRUE(st.state == "paused" || st.state == "done")
            << st.state;
    }
    {
        serve::JobManager jm(model, dirB);
        const std::size_t queued = jm.recover();
        // Either it paused (queued again) or finished before stop().
        EXPECT_LE(queued, 1u);
        jm.start();
        serve::JobStatus st;
        ASSERT_TRUE(waitFor([&] {
            return jm.status("resume", st) && st.state == "done";
        }));
        jm.stop();
        const std::string resumedBody =
            readFile(jm.resultPath("resume"));
        EXPECT_EQ(resumedBody, refBody)
            << "resumed result.json differs from uninterrupted run";
    }
}

TEST(ServeServer, SearchOverTheWireReachesDone)
{
    baselines::LatencyLut model(nasbench::DatasetId::Cifar10,
                                hw::PlatformId::EdgeGpu);
    serve::ServerConfig cfg;
    cfg.batchDeadlineUs = 0;
    cfg.jobsDir = freshDir("hwpr_serve_wire_jobs");
    LiveServer live(model, cfg);
    Client client(live.port());
    ASSERT_TRUE(client.connected());

    json::Value resp = client.roundTrip(
        "{\"op\": \"search\", \"job\": \"wire\", \"population\": 8, "
        "\"generations\": 2, \"seed\": 3, \"space\": \"nb201\"}");
    ASSERT_EQ(resp.find("error"), nullptr)
        << resp.stringOr("error", "");
    EXPECT_EQ(resp.stringOr("job", ""), "wire");

    ASSERT_TRUE(waitFor([&] {
        const json::Value st =
            client.roundTrip("{\"op\": \"job\", \"job\": \"wire\"}");
        const json::Value *status = st.find("status");
        return status != nullptr &&
               status->stringOr("state", "") == "done";
    }));
    const json::Value done =
        client.roundTrip("{\"op\": \"job\", \"job\": \"wire\"}");
    ASSERT_NE(done.find("result"), nullptr);
    EXPECT_EQ(done.find("result")->stringOr("id", ""), "wire");

    // jobs listing shows it too.
    const json::Value listing =
        client.roundTrip("{\"op\": \"jobs\"}");
    ASSERT_NE(listing.find("jobs"), nullptr);
    EXPECT_EQ(listing.find("jobs")->asArray().size(), 1u);
}

/**
 * @file
 * EncodingCache concurrency property tests: readers and writers
 * spinning past the capacity cap (run under TSan in CI) with the
 * accounting invariants that tie hit/miss/eviction counters to the
 * final table size, plus data-integrity checks that a concurrent
 * eviction can never tear a row a reader is copying.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/rank_cache.h"
#include "nasbench/arch.h"
#include "nasbench/space.h"

using namespace hwpr;

namespace
{

/** Distinct architecture #id: the id written out in the space's
 *  mixed-radix genome alphabet, so ids map 1:1 onto genomes. */
nasbench::Architecture
archNo(std::uint64_t id)
{
    const auto &space = nasbench::nasBench201();
    nasbench::Architecture a;
    a.space = nasbench::SpaceId::NasBench201;
    a.genome.resize(space.genomeLength());
    for (std::size_t pos = 0; pos < a.genome.size(); ++pos) {
        const std::uint64_t radix = space.numOptions(pos);
        a.genome[pos] = int(id % radix);
        id /= radix;
    }
    return a;
}

/** Key-derived row pattern so readers can validate payload bytes. */
std::vector<double>
rowFor(std::uint64_t id, std::size_t width)
{
    std::vector<double> row(width);
    for (std::size_t c = 0; c < width; ++c)
        row[c] = double(id) * 1000.0 + double(c);
    return row;
}

} // namespace

TEST(EncodingCacheProp, ConcurrentInsertAndEvictKeepCountersSane)
{
    constexpr std::size_t kWidth = 8;
    constexpr std::size_t kCap = 64;
    constexpr std::uint64_t kKeys = 512; // 8x past capacity
    core::EncodingCache cache;
    cache.init(kWidth, kCap);

    std::atomic<std::uint64_t> lookups{0};
    std::atomic<std::uint64_t> corrupt{0};
    std::atomic<bool> stop{false};

    // Writers insert distinct keys far past the cap; readers hammer
    // lookups over the same key range and validate every hit's
    // payload — an eviction racing a lookup must never expose a torn
    // or foreign row.
    std::vector<std::thread> threads;
    for (int w = 0; w < 2; ++w)
        threads.emplace_back([&, w] {
            for (int pass = 0; pass < 8; ++pass)
                for (std::uint64_t id = std::uint64_t(w);
                     id < kKeys; id += 2) {
                    const auto row = rowFor(id, kWidth);
                    cache.insert(archNo(id), row.data());
                }
            stop.store(true);
        });
    for (int r = 0; r < 2; ++r)
        threads.emplace_back([&, r] {
            std::uint64_t id = std::uint64_t(r) * 17;
            std::vector<double> dst(kWidth);
            while (!stop.load()) {
                id = (id + 13) % kKeys;
                lookups.fetch_add(1);
                if (!cache.lookup(archNo(id), dst.data()))
                    continue;
                const auto want = rowFor(id, kWidth);
                for (std::size_t c = 0; c < kWidth; ++c)
                    if (dst[c] != want[c])
                        corrupt.fetch_add(1);
            }
        });
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(corrupt.load(), 0u);
    // Accounting invariants after the storm:
    //  - the table never exceeds its cap;
    //  - every lookup was counted exactly once as a hit or a miss;
    //  - evictions only happen on insert of an absent key at cap, so
    //    they are bounded by the number of inserts issued.
    EXPECT_LE(cache.size(), kCap);
    EXPECT_GT(cache.size(), 0u);
    EXPECT_EQ(cache.hits() + cache.misses(), lookups.load());
    EXPECT_LE(cache.evictions(), 2u * 8u * (kKeys / 2));
}

TEST(EncodingCacheProp, EvictionsTrackSizeExactlyOncePinnedAtCap)
{
    constexpr std::size_t kWidth = 4;
    constexpr std::size_t kCap = 32;
    core::EncodingCache cache;
    cache.init(kWidth, kCap);

    // Fill to exactly the cap: no evictions yet.
    for (std::uint64_t id = 0; id < kCap; ++id) {
        const auto row = rowFor(id, kWidth);
        cache.insert(archNo(id), row.data());
    }
    EXPECT_EQ(cache.size(), kCap);
    EXPECT_EQ(cache.evictions(), 0u);

    // Every further fresh key evicts exactly one resident row; the
    // size stays pinned at the cap.
    constexpr std::uint64_t kExtra = 48;
    for (std::uint64_t id = kCap; id < kCap + kExtra; ++id) {
        const auto row = rowFor(id, kWidth);
        cache.insert(archNo(id), row.data());
        EXPECT_EQ(cache.size(), kCap);
    }
    EXPECT_EQ(cache.evictions(), kExtra);

    // Re-inserting a resident key is a no-op: no eviction, no growth,
    // and the original payload wins (rows are bitwise equal in real
    // use; the sentinel makes the no-op visible here).
    const std::uint64_t resident = kCap + kExtra - 1;
    std::vector<double> sentinel(kWidth, -1.0);
    cache.insert(archNo(resident), sentinel.data());
    EXPECT_EQ(cache.size(), kCap);
    EXPECT_EQ(cache.evictions(), kExtra);
    std::vector<double> dst(kWidth);
    ASSERT_TRUE(cache.lookup(archNo(resident), dst.data()));
    EXPECT_EQ(dst, rowFor(resident, kWidth));
}

TEST(EncodingCacheProp, HashCollisionDegradesToMissNeverWrongRow)
{
    constexpr std::size_t kWidth = 4;
    // key_bits = 0 masks every key to the same bucket: all
    // architectures collide. Regression for the bug where a bare
    // key match served another architecture's encoding row.
    core::EncodingCache cache;
    cache.init(kWidth, 32, /*key_bits=*/0);

    const auto a = archNo(1);
    const auto b = archNo(2);
    ASSERT_FALSE(a == b);

    const auto row_a = rowFor(1, kWidth);
    cache.insert(a, row_a.data());

    // The owner of the bucket still hits with its own row.
    std::vector<double> dst(kWidth, 0.0);
    ASSERT_TRUE(cache.lookup(a, dst.data()));
    EXPECT_EQ(dst, row_a);
    EXPECT_EQ(cache.collisions(), 0u);

    // A different architecture mapping to the same bucket must MISS
    // (the bug returned row_a here) and be counted as a collision
    // and a miss — never served a foreign row.
    std::vector<double> probe(kWidth, -7.0);
    EXPECT_FALSE(cache.lookup(b, probe.data()));
    EXPECT_EQ(probe, std::vector<double>(kWidth, -7.0)); // untouched
    EXPECT_EQ(cache.collisions(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);

    // Inserting the collider overwrites the bucket (most-recent
    // wins); the displaced architecture degrades to future misses.
    const auto row_b = rowFor(2, kWidth);
    cache.insert(b, row_b.data());
    EXPECT_EQ(cache.size(), 1u);
    ASSERT_TRUE(cache.lookup(b, dst.data()));
    EXPECT_EQ(dst, row_b);
    EXPECT_FALSE(cache.lookup(a, dst.data()));
    EXPECT_EQ(cache.collisions(), 2u);
}

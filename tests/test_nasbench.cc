/**
 * @file
 * Benchmark-substrate tests: space sizes and genetic operators, the
 * canonical string/token/graph forms, lowering to operator workloads,
 * topology analysis, the accuracy simulator's calibration properties,
 * and dataset assembly.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "common/stats.h"
#include "nasbench/accuracy.h"
#include "nasbench/analysis.h"
#include "nasbench/dataset.h"
#include "nasbench/fbnet.h"
#include "nasbench/features.h"
#include "nasbench/nasbench201.h"
#include "nasbench/space.h"

using namespace hwpr;
using namespace hwpr::nasbench;

TEST(Nb201, SpaceSize)
{
    EXPECT_DOUBLE_EQ(nasBench201().size(), 15625.0);
    EXPECT_EQ(nasBench201().genomeLength(), 6u);
}

TEST(Nb201, DecodeEnumerateRoundTrip)
{
    const auto &space =
        static_cast<const NasBench201Space &>(nasBench201());
    const auto all = space.enumerate();
    EXPECT_EQ(all.size(), 15625u);
    std::unordered_set<Architecture, ArchHash> seen(all.begin(),
                                                    all.end());
    EXPECT_EQ(seen.size(), 15625u);
}

TEST(Nb201, CanonicalStringFormat)
{
    Architecture a;
    a.space = SpaceId::NasBench201;
    // Edges in order: 1<-0; 2<-0, 2<-1; 3<-0, 3<-1, 3<-2.
    a.genome = {3, 3, 0, 0, 0, 1};
    const std::string s = nasBench201().toString(a);
    EXPECT_EQ(s, "|nor_conv_3x3~0|+"
                 "|nor_conv_3x3~0|none~1|+"
                 "|none~0|none~1|skip_connect~2|");
}

TEST(Nb201, TokenizePadsToSharedLength)
{
    Rng rng(1);
    const auto a = nasBench201().sample(rng);
    const auto tokens = nasBench201().tokenize(a);
    EXPECT_EQ(tokens.size(), kTokenLength);
    for (std::size_t i = 0; i < 6; ++i) {
        EXPECT_GE(int(tokens[i]), category::kNb201Base);
        EXPECT_LT(int(tokens[i]), category::kNb201Base + 5);
    }
    for (std::size_t i = 6; i < kTokenLength; ++i)
        EXPECT_EQ(tokens[i], std::size_t(category::kPad));
}

TEST(Nb201, GraphShape)
{
    Rng rng(2);
    const auto a = nasBench201().sample(rng);
    const auto g = nasBench201().toGraph(a);
    // 4 cell nodes + 6 op nodes + global.
    EXPECT_EQ(g.adjacency.rows(), 11u);
    EXPECT_EQ(g.nodeCategories.size(), 11u);
    EXPECT_EQ(g.globalNode, 10u);
    // Adjacency symmetric.
    for (std::size_t i = 0; i < 11; ++i)
        for (std::size_t j = 0; j < 11; ++j)
            EXPECT_DOUBLE_EQ(g.adjacency(i, j), g.adjacency(j, i));
    // Global node connected to all others.
    for (std::size_t i = 0; i + 1 < 11; ++i)
        EXPECT_DOUBLE_EQ(g.adjacency(i, 10), 1.0);
}

TEST(Fbnet, SpaceBasics)
{
    EXPECT_EQ(fbnet().genomeLength(), 22u);
    EXPECT_EQ(fbnet().numOptions(0), 9u);
    EXPECT_NEAR(fbnet().size() / std::pow(9.0, 22.0), 1.0, 1e-12);
}

TEST(Fbnet, SkipLegality)
{
    // Layer 1 has stride 2 (16 -> 24): skip must degrade to k3_e1.
    const auto &block = FBNetSpace::effectiveBlock(1, 8);
    EXPECT_STREQ(block.name, "k3_e1");
    // Layer 2 is stride-1 24 -> 24: skip stays skip.
    EXPECT_TRUE(FBNetSpace::effectiveBlock(2, 8).isSkip);
}

TEST(Fbnet, GraphIsChain)
{
    Rng rng(3);
    const auto a = fbnet().sample(rng);
    const auto g = fbnet().toGraph(a);
    EXPECT_EQ(g.adjacency.rows(), 25u); // in + 22 + out + global
    // Chain edges present.
    for (std::size_t i = 0; i + 2 < 25; ++i)
        EXPECT_DOUBLE_EQ(g.adjacency(i, i + 1), 1.0);
}

class SpaceOpsTest : public ::testing::TestWithParam<SpaceId>
{
  protected:
    const SearchSpace &space() const { return spaceFor(GetParam()); }
};

TEST_P(SpaceOpsTest, SampleIsValid)
{
    Rng rng(4);
    for (int i = 0; i < 50; ++i) {
        const auto a = space().sample(rng);
        EXPECT_EQ(a.space, space().id());
        space().checkArch(a); // fatal on violation
    }
}

TEST_P(SpaceOpsTest, MutationChangesGenome)
{
    Rng rng(5);
    for (int i = 0; i < 30; ++i) {
        const auto a = space().sample(rng);
        const auto b = space().mutate(a, 0.3, rng);
        EXPECT_NE(a.genome, b.genome);
        space().checkArch(b);
    }
}

TEST_P(SpaceOpsTest, CrossoverMixesParents)
{
    Rng rng(6);
    const auto a = space().sample(rng);
    const auto b = space().sample(rng);
    const auto c = space().crossover(a, b, rng);
    space().checkArch(c);
    for (std::size_t i = 0; i < c.genome.size(); ++i)
        EXPECT_TRUE(c.genome[i] == a.genome[i] ||
                    c.genome[i] == b.genome[i]);
}

TEST_P(SpaceOpsTest, TokensInUnifiedVocabulary)
{
    Rng rng(7);
    const auto a = space().sample(rng);
    for (std::size_t t : space().tokenize(a))
        EXPECT_LT(t, std::size_t(category::kNumCategories));
}

TEST_P(SpaceOpsTest, LoweringProducesClassifier)
{
    Rng rng(8);
    const auto a = space().sample(rng);
    const auto net = space().lower(a, DatasetId::Cifar10);
    ASSERT_FALSE(net.empty());
    EXPECT_EQ(net.back().kind, hw::OpKind::Linear);
    EXPECT_EQ(net.back().cout, 10);
    const auto net100 = space().lower(a, DatasetId::Cifar100);
    EXPECT_EQ(net100.back().cout, 100);
    // ImageNet16 inputs halve every spatial size (FBNet executes at
    // its native 2x resolution, so its stem sees 2x the crop).
    const auto net16 = space().lower(a, DatasetId::ImageNet16);
    const int expected =
        GetParam() == SpaceId::FBNet ? 32 : 16;
    EXPECT_EQ(net16.front().h, expected);
    EXPECT_EQ(net16.back().cout, 120);
}

INSTANTIATE_TEST_SUITE_P(BothSpaces, SpaceOpsTest,
                         ::testing::Values(SpaceId::NasBench201,
                                           SpaceId::FBNet));

TEST(Analysis, DisconnectedCellDetected)
{
    Architecture a;
    a.space = SpaceId::NasBench201;
    a.genome = {0, 0, 0, 0, 0, 0}; // all none
    const auto cell = analyzeNb201Cell(a);
    EXPECT_FALSE(cell.connected);
    EXPECT_EQ(cell.numPaths, 0);
}

TEST(Analysis, DirectEdgeOnlyCell)
{
    Architecture a;
    a.space = SpaceId::NasBench201;
    // Only edge 3<-0 active (index 3) with conv3x3.
    a.genome = {0, 0, 0, 3, 0, 0};
    const auto cell = analyzeNb201Cell(a);
    EXPECT_TRUE(cell.connected);
    EXPECT_TRUE(cell.hasConvOnPath);
    EXPECT_EQ(cell.numPaths, 1);
    EXPECT_EQ(cell.longestConvPath, 1);
    EXPECT_EQ(cell.convs3x3, 1);
}

TEST(Analysis, AllConvCellCounts)
{
    Architecture a;
    a.space = SpaceId::NasBench201;
    a.genome = {3, 3, 3, 3, 3, 3}; // all conv3x3
    const auto cell = analyzeNb201Cell(a);
    EXPECT_TRUE(cell.connected);
    EXPECT_EQ(cell.convs3x3, 6);
    // Longest path 0->1->2->3 has 3 convs.
    EXPECT_EQ(cell.longestConvPath, 3);
    // Paths: 0->3, 0->1->3, 0->2->3, 0->1->2->3.
    EXPECT_EQ(cell.numPaths, 4);
}

TEST(Analysis, SkipOnlyCellHasNoConv)
{
    Architecture a;
    a.space = SpaceId::NasBench201;
    a.genome = {1, 1, 1, 1, 1, 1}; // all skip
    const auto cell = analyzeNb201Cell(a);
    EXPECT_TRUE(cell.connected);
    EXPECT_FALSE(cell.hasConvOnPath);
    EXPECT_EQ(cell.longestConvPath, 0);
}

TEST(Analysis, FbnetChainCountsBlocks)
{
    Architecture a;
    a.space = SpaceId::FBNet;
    a.genome.assign(22, 8); // all skip (degrades on stride layers)
    const auto chain = analyzeFbnetChain(a);
    // Stride/channel-change layers force conv blocks: layers 1, 5, 9,
    // 13, 17, 21 cannot skip.
    EXPECT_EQ(chain.activeBlocks, 6);
    EXPECT_GT(chain.longestSkipRun, 0);
}

TEST(Features, VectorShapeAndNames)
{
    EXPECT_EQ(archFeatureNames().size(), kNumArchFeatures);
    Rng rng(9);
    const auto a = nasBench201().sample(rng);
    const auto f = archFeatures(a, DatasetId::Cifar10);
    EXPECT_EQ(f.size(), kNumArchFeatures);
    for (double v : f)
        EXPECT_TRUE(std::isfinite(v));
}

TEST(Features, MoreConvsMoreFlops)
{
    Architecture lean, rich;
    lean.space = rich.space = SpaceId::NasBench201;
    lean.genome = {1, 0, 0, 0, 0, 1};  // skips only
    rich.genome = {3, 3, 3, 3, 3, 3};  // all conv3x3
    const auto fl = archFeatures(lean, DatasetId::Cifar10);
    const auto fr = archFeatures(rich, DatasetId::Cifar10);
    EXPECT_LT(fl[0], fr[0]); // log flops
    EXPECT_LT(fl[1], fr[1]); // log params
    EXPECT_LT(fl[2], fr[2]); // conv count
}

TEST(Features, ScalerNormalizes)
{
    Rng rng(10);
    std::vector<std::vector<double>> rows;
    for (int i = 0; i < 100; ++i)
        rows.push_back(
            archFeatures(nasBench201().sample(rng), DatasetId::Cifar10));
    const auto scaler = FeatureScaler::fit(rows);
    std::vector<double> col0;
    for (const auto &r : rows)
        col0.push_back(scaler.apply(r)[0]);
    EXPECT_NEAR(mean(col0), 0.0, 1e-9);
    EXPECT_NEAR(stddev(col0), 1.0, 0.05);
}

TEST(Accuracy, DisconnectedIsRandomChance)
{
    Architecture a;
    a.space = SpaceId::NasBench201;
    a.genome = {0, 0, 0, 0, 0, 0};
    EXPECT_NEAR(structuralAccuracy(a, DatasetId::Cifar10), 10.0, 1e-9);
    EXPECT_NEAR(structuralAccuracy(a, DatasetId::Cifar100), 1.0, 1e-9);
    EXPECT_NEAR(structuralAccuracy(a, DatasetId::ImageNet16),
                100.0 / 120.0, 1e-9);
}

TEST(Accuracy, DatasetDifficultyOrdering)
{
    Rng rng(11);
    for (int i = 0; i < 40; ++i) {
        const auto a = nasBench201().sample(rng);
        const double c10 = structuralAccuracy(a, DatasetId::Cifar10);
        const double c100 = structuralAccuracy(a, DatasetId::Cifar100);
        const double in16 =
            structuralAccuracy(a, DatasetId::ImageNet16);
        EXPECT_GT(c10, c100);
        EXPECT_GT(c100, in16);
    }
}

TEST(Accuracy, DeterministicAcrossCalls)
{
    Rng rng(12);
    const auto a = fbnet().sample(rng);
    EXPECT_DOUBLE_EQ(simulatedAccuracy(a, DatasetId::Cifar10),
                     simulatedAccuracy(a, DatasetId::Cifar10));
}

TEST(Accuracy, ConvCellBeatsSkipOnlyCell)
{
    Architecture convs, skips;
    convs.space = skips.space = SpaceId::NasBench201;
    convs.genome = {3, 3, 3, 3, 3, 3};
    skips.genome = {1, 1, 1, 1, 1, 1};
    EXPECT_GT(structuralAccuracy(convs, DatasetId::Cifar10),
              structuralAccuracy(skips, DatasetId::Cifar10) + 10.0);
}

TEST(Accuracy, WithinPublishedRange)
{
    Rng rng(13);
    for (int i = 0; i < 200; ++i) {
        const auto a = nasBench201().sample(rng);
        const double acc = simulatedAccuracy(a, DatasetId::Cifar10);
        EXPECT_GE(acc, 0.0);
        EXPECT_LE(acc, 100.0);
    }
    // The best cells approach the published C10 ceiling (~94.5%).
    Architecture best;
    best.space = SpaceId::NasBench201;
    best.genome = {3, 3, 3, 3, 3, 3};
    EXPECT_GT(simulatedAccuracy(best, DatasetId::Cifar10), 90.0);
    EXPECT_LT(simulatedAccuracy(best, DatasetId::Cifar10), 96.0);
}

TEST(Accuracy, AfOnlyCorrelationIsPartial)
{
    // The paper measures Kendall tau ~0.63 for an AF-based accuracy
    // predictor; the simulator must leave structure AF cannot see.
    Rng rng(14);
    std::vector<double> flops, acc;
    for (int i = 0; i < 400; ++i) {
        const auto a = nasBench201().sample(rng);
        flops.push_back(archFeatures(a, DatasetId::Cifar10)[0]);
        acc.push_back(simulatedAccuracy(a, DatasetId::Cifar10));
    }
    const double tau = kendallTau(flops, acc);
    EXPECT_GT(tau, 0.3);  // clearly informative...
    EXPECT_LT(tau, 0.85); // ...but far from sufficient
}

TEST(Oracle, MemoizesRecords)
{
    Oracle oracle(DatasetId::Cifar10);
    Rng rng(15);
    const auto a = nasBench201().sample(rng);
    const auto &r1 = oracle.record(a);
    const auto &r2 = oracle.record(a);
    EXPECT_EQ(&r1, &r2);
    EXPECT_EQ(oracle.numEvaluated(), 1u);
    EXPECT_GT(r1.latencyMs[0], 0.0);
    EXPECT_GT(r1.energyMj[0], 0.0);
}

TEST(Dataset, SampleSplitsAreDisjointAndComplete)
{
    Oracle oracle(DatasetId::Cifar10);
    Rng rng(16);
    const auto data = SampledDataset::sample(
        {&nasBench201(), &fbnet()}, oracle, 200, 120, 40, rng);
    EXPECT_EQ(data.records.size(), 200u);
    EXPECT_EQ(data.trainIdx.size(), 120u);
    EXPECT_EQ(data.valIdx.size(), 40u);
    EXPECT_EQ(data.testIdx.size(), 40u);
    std::unordered_set<std::size_t> seen;
    for (const auto *split :
         {&data.trainIdx, &data.valIdx, &data.testIdx})
        for (std::size_t i : *split)
            EXPECT_TRUE(seen.insert(i).second);
    EXPECT_EQ(seen.size(), 200u);

    // Distinct architectures.
    std::unordered_set<Architecture, ArchHash> archs;
    for (const auto &rec : data.records)
        EXPECT_TRUE(archs.insert(rec.arch).second);
}

TEST(Dataset, SelectReturnsMatchingRecords)
{
    Oracle oracle(DatasetId::Cifar100);
    Rng rng(17);
    const auto data = SampledDataset::sample({&nasBench201()}, oracle,
                                             50, 30, 10, rng);
    const auto train = data.select(data.trainIdx);
    ASSERT_EQ(train.size(), 30u);
    EXPECT_EQ(train[0]->arch, data.records[data.trainIdx[0]].arch);
}

TEST(ArchHash, SaltChangesHash)
{
    Rng rng(18);
    const auto a = nasBench201().sample(rng);
    EXPECT_NE(a.hash(1), a.hash(2));
    EXPECT_EQ(a.hash(1), a.hash(1));
}

TEST_P(SpaceOpsTest, StringRoundTrip)
{
    Rng rng(20);
    for (int i = 0; i < 40; ++i) {
        const auto a = space().sample(rng);
        const auto b = space().fromString(space().toString(a));
        // FBNet prints effective blocks (illegal skips degrade), so
        // compare canonical strings, which are stable under the map.
        EXPECT_EQ(space().toString(a), space().toString(b));
    }
}

TEST_P(SpaceOpsTest, GenomeRoundTrip)
{
    Rng rng(21);
    const auto a = space().sample(rng);
    std::string text;
    for (std::size_t i = 0; i < a.genome.size(); ++i) {
        if (i)
            text += ",";
        text += std::to_string(a.genome[i]);
    }
    const auto b = space().fromGenome(text);
    EXPECT_EQ(a, b);
}

TEST(Nb201, FromStringKnownValue)
{
    const auto a = nasBench201().fromString(
        "|nor_conv_3x3~0|+"
        "|nor_conv_3x3~0|none~1|+"
        "|none~0|none~1|skip_connect~2|");
    const std::vector<int> expected = {3, 3, 0, 0, 0, 1};
    EXPECT_EQ(a.genome, expected);
}

TEST(Lookup, PlatformNames)
{
    hw::PlatformId p;
    EXPECT_TRUE(hw::platformFromName("edgegpu", p));
    EXPECT_EQ(p, hw::PlatformId::EdgeGpu);
    EXPECT_TRUE(hw::platformFromName("FPGA-ZC706", p));
    EXPECT_EQ(p, hw::PlatformId::FpgaZC706);
    EXPECT_TRUE(hw::platformFromName("fpgazcu102", p));
    EXPECT_EQ(p, hw::PlatformId::FpgaZCU102);
    EXPECT_FALSE(hw::platformFromName("abacus", p));
}

TEST(Lookup, DatasetNames)
{
    DatasetId d;
    EXPECT_TRUE(datasetFromName("CIFAR-10", d));
    EXPECT_EQ(d, DatasetId::Cifar10);
    EXPECT_TRUE(datasetFromName("imagenet16", d));
    EXPECT_EQ(d, DatasetId::ImageNet16);
    EXPECT_FALSE(datasetFromName("mnist", d));
}

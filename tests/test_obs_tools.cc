/**
 * @file
 * Observability tooling tests: the minimal JSON reader, flattened
 * snapshot diffing with tolerance bands (the engine behind
 * `hwpr-obs diff`), Chrome-trace self/total aggregation, the run
 * ledger, and the snapshot-diff round trip — a live registry
 * snapshot diffed against itself is clean, and a synthetic 2x
 * slowdown is flagged as a regression.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/ledger.h"
#include "common/obs.h"
#include "common/obsdiff.h"

using namespace hwpr;

namespace
{

/** Temp file that cleans up after itself. */
class TempFile
{
  public:
    explicit TempFile(const std::string &name)
        : path_(::testing::TempDir() + name)
    {
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

} // namespace

TEST(JsonParser, ParsesTheFullValueModel)
{
    const json::Value v = json::parse(
        "{\"a\": 1.5, \"b\": [1, 2, 3], \"c\": {\"d\": true, "
        "\"e\": null}, \"f\": \"x\\n\\\"y\\\"\", \"g\": -2e3}");
    ASSERT_TRUE(v.isObject());
    EXPECT_DOUBLE_EQ(v.find("a")->asNumber(), 1.5);
    ASSERT_TRUE(v.find("b")->isArray());
    EXPECT_EQ(v.find("b")->asArray().size(), 3u);
    EXPECT_DOUBLE_EQ(v.find("b")->asArray()[1].asNumber(), 2.0);
    EXPECT_TRUE(v.find("c")->find("d")->asBool());
    EXPECT_TRUE(v.find("c")->find("e")->isNull());
    EXPECT_EQ(v.find("f")->asString(), "x\n\"y\"");
    EXPECT_DOUBLE_EQ(v.find("g")->asNumber(), -2000.0);
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_DOUBLE_EQ(v.numberOr("a", 0.0), 1.5);
    EXPECT_DOUBLE_EQ(v.numberOr("missing", 7.0), 7.0);

    // Object member order is preserved (snapshots are sorted on the
    // writer side; the reader must not reshuffle them).
    const auto &members = v.asObject();
    EXPECT_EQ(members[0].first, "a");
    EXPECT_EQ(members[4].first, "g");
}

TEST(JsonParser, RejectsMalformedInput)
{
    EXPECT_THROW(json::parse("{\"a\": }"), std::runtime_error);
    EXPECT_THROW(json::parse("[1, 2"), std::runtime_error);
    EXPECT_THROW(json::parse("{} trailing"), std::runtime_error);
    EXPECT_THROW(json::parse("\"unterminated"), std::runtime_error);
    EXPECT_THROW(json::parse("nulll"), std::runtime_error);
    EXPECT_THROW(json::parseFile("/nonexistent/nope.json"),
                 std::runtime_error);
}

TEST(JsonParser, RejectsOutOfRangeNumbersWithByteOffset)
{
    // strtod saturates 1e400 to inf without setting an error; the
    // reader must refuse it rather than let inf flow downstream.
    EXPECT_THROW(json::parse("1e400"), std::runtime_error);
    EXPECT_THROW(json::parse("-1e400"), std::runtime_error);
    EXPECT_THROW(json::parse("[1, 2, 1e999]"), std::runtime_error);
    try {
        json::parse("{\"lat\": 1e400}");
        FAIL() << "overflowing literal accepted";
    } catch (const std::runtime_error &e) {
        // The error names the offending token and its byte offset
        // (the literal starts at byte 8 of the document).
        EXPECT_NE(std::string(e.what()).find("out of range"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("at byte 8"),
                  std::string::npos)
            << e.what();
    }

    // Boundary behavior: the largest finite double still parses;
    // underflow to zero stays legal (finite, only precision lost).
    EXPECT_DOUBLE_EQ(json::parse("1.7976931348623157e308").asNumber(),
                     1.7976931348623157e308);
    EXPECT_DOUBLE_EQ(json::parse("1e-999").asNumber(), 0.0);
}

TEST(JsonParser, RoundTripsARegistrySnapshot)
{
    auto &reg = obs::Registry::global();
    reg.counter("test.tools.counter").reset();
    reg.counter("test.tools.counter").add(42);
    reg.gauge("test.tools.gauge").set(3.25);
    obs::Histogram &h =
        reg.histogram("test.tools.hist", {10.0, 100.0});
    h.reset();
    h.record(5.0);
    h.record(50.0);

    const json::Value v = json::parse(reg.snapshotJson());
    EXPECT_DOUBLE_EQ(v.find("counters")->numberOr(
                         "test.tools.counter", 0.0),
                     42.0);
    EXPECT_DOUBLE_EQ(
        v.find("gauges")->numberOr("test.tools.gauge", 0.0), 3.25);
    const json::Value *hist =
        v.find("histograms")->find("test.tools.hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_DOUBLE_EQ(hist->numberOr("count", 0.0), 2.0);
    EXPECT_NE(hist->find("p50"), nullptr);
    EXPECT_NE(hist->find("p99"), nullptr);
}

TEST(ObsDiff, KeyClassification)
{
    using obsdiff::KeyClass;
    EXPECT_EQ(obsdiff::classifyKey("histograms.fit.epoch_us.p99"),
              KeyClass::TimeLike);
    EXPECT_EQ(obsdiff::classifyKey("cases.hwprnas.t4.fit_seconds"),
              KeyClass::TimeLike);
    EXPECT_EQ(obsdiff::classifyKey("meta.peak_rss_kb"),
              KeyClass::TimeLike);
    EXPECT_EQ(obsdiff::classifyKey("gauges.predict.ops_per_s.lut"),
              KeyClass::RateLike);
    EXPECT_EQ(obsdiff::classifyKey("cases.lut.b64.t4.speedup"),
              KeyClass::RateLike);
    EXPECT_EQ(obsdiff::classifyKey("cases.x.steps_per_sec"),
              KeyClass::RateLike);
    EXPECT_EQ(obsdiff::classifyKey("counters.moea.evaluations"),
              KeyClass::CountLike);
    EXPECT_TRUE(obsdiff::isMicrosecondKey("h.predict_batch.us.p50"));
    EXPECT_FALSE(obsdiff::isMicrosecondKey("cases.a.fit_seconds"));
}

TEST(ObsDiff, FlattensBenchCasesByIdentity)
{
    const json::Value v = json::parse(
        "{\"cases\": [{\"model\": \"HW-PR-NAS\", \"threads\": 4, "
        "\"fit_seconds\": 2.5}, {\"kernel\": \"lut\", \"batch\": 64, "
        "\"threads\": 2, \"ops_per_sec\": 1e6}], "
        "\"histograms\": {\"h\": {\"p50\": 10, \"buckets\": "
        "[[1, 5]]}}}");
    std::map<std::string, double> flat;
    obsdiff::flatten(v, "", flat);
    EXPECT_DOUBLE_EQ(flat.at("cases.HW-PR-NAS.t4.fit_seconds"), 2.5);
    EXPECT_DOUBLE_EQ(flat.at("cases.lut.b64.t2.ops_per_sec"), 1e6);
    EXPECT_DOUBLE_EQ(flat.at("histograms.h.p50"), 10.0);
    // Bucket arrays are skipped: the percentiles carry the signal.
    for (const auto &[k, val] : flat)
        EXPECT_EQ(k.find("buckets"), std::string::npos) << k;
}

TEST(ObsDiff, CleanOnIdenticalAndFlagsTwoXSlowdown)
{
    auto &reg = obs::Registry::global();
    obs::Histogram &h = reg.histogram("test.tools.diff_us",
                                      {1e4, 1e5, 1e6});
    h.reset();
    for (int i = 0; i < 50; ++i)
        h.record(5e4);

    // Round trip: snapshot -> parse -> diff against itself is clean.
    const json::Value snap = json::parse(reg.snapshotJson());
    obsdiff::DiffOptions opt; // defaults: tol 1.6, floor 1000us
    const obsdiff::DiffResult same = obsdiff::diff(snap, snap, opt);
    EXPECT_EQ(same.regressions, 0u);
    EXPECT_EQ(same.improvements, 0u);
    EXPECT_GT(same.compared, 0u);

    // Synthetic 2x slowdown on the histogram: must be flagged.
    h.reset();
    for (int i = 0; i < 50; ++i)
        h.record(1e5);
    const json::Value slow = json::parse(reg.snapshotJson());
    const obsdiff::DiffResult worse = obsdiff::diff(snap, slow, opt);
    EXPECT_GT(worse.regressions, 0u);
    bool found = false;
    for (const auto &e : worse.entries)
        if (e.regression &&
            e.key.find("test.tools.diff_us") != std::string::npos)
            found = true;
    EXPECT_TRUE(found);

    // ...and the reverse direction reads as an improvement.
    const obsdiff::DiffResult better = obsdiff::diff(slow, snap, opt);
    EXPECT_EQ(better.regressions, 0u);
    EXPECT_GT(better.improvements, 0u);

    // Markdown report carries the verdict and the offending key.
    const std::string md =
        obsdiff::markdownReport(worse, "base", "cand", opt);
    EXPECT_NE(md.find("Regressions"), std::string::npos);
    EXPECT_NE(md.find("test.tools.diff_us"), std::string::npos);
    h.reset();
}

TEST(ObsDiff, AbsoluteFloorSuppressesMicrosecondNoise)
{
    // 30us vs 90us is a 3x "regression" — and pure scheduling noise.
    const json::Value a =
        json::parse("{\"histograms\": {\"tiny.us\": {\"p50\": 30}}}");
    const json::Value b =
        json::parse("{\"histograms\": {\"tiny.us\": {\"p50\": 90}}}");
    obsdiff::DiffOptions opt;
    EXPECT_EQ(obsdiff::diff(a, b, opt).regressions, 0u);
    // Second-denominated keys have no floor: they are never tiny.
    const json::Value c =
        json::parse("{\"cases\": [{\"model\": \"m\", "
                    "\"fit_seconds\": 2.0}]}");
    const json::Value d =
        json::parse("{\"cases\": [{\"model\": \"m\", "
                    "\"fit_seconds\": 4.1}]}");
    EXPECT_EQ(obsdiff::diff(c, d, opt).regressions, 1u);
}

TEST(ObsDiff, RateLikeKeysGateInTheOppositeDirection)
{
    const json::Value fast = json::parse(
        "{\"gauges\": {\"predict.ops_per_s.mlp\": 200000}}");
    const json::Value slow = json::parse(
        "{\"gauges\": {\"predict.ops_per_s.mlp\": 90000}}");
    obsdiff::DiffOptions opt;
    EXPECT_EQ(obsdiff::diff(fast, slow, opt).regressions, 1u);
    EXPECT_EQ(obsdiff::diff(slow, fast, opt).regressions, 0u);
    EXPECT_EQ(obsdiff::diff(slow, fast, opt).improvements, 1u);
}

TEST(ObsDiff, IgnoresSchedulingNoiseKeysByDefault)
{
    const json::Value a = json::parse(
        "{\"counters\": {\"threadpool.worker.0.busy_us\": 100, "
        "\"profile.samples\": 10, \"trace.dropped\": 0}}");
    const json::Value b = json::parse(
        "{\"counters\": {\"threadpool.worker.0.busy_us\": 100000, "
        "\"profile.samples\": 99, \"trace.dropped\": 5}}");
    obsdiff::DiffOptions opt;
    const obsdiff::DiffResult r = obsdiff::diff(a, b, opt);
    EXPECT_EQ(r.compared, 0u);
    EXPECT_EQ(r.regressions, 0u);
}

TEST(ObsDiff, ZeroBaselineReportsNewNotInfiniteRatio)
{
    // A counter that is 0 in the base run (e.g. a feature that never
    // fired) and live in the candidate used to yield a 0/garbage
    // ratio; it must read as "new" and never gate.
    const json::Value a = json::parse(
        "{\"counters\": {\"serve.requests\": 0, "
        "\"serve.batches\": 12, \"serve.errors\": 3}}");
    const json::Value b = json::parse(
        "{\"counters\": {\"serve.requests\": 100, "
        "\"serve.batches\": 12, \"serve.errors\": 0}}");
    obsdiff::DiffOptions opt;
    const obsdiff::DiffResult r = obsdiff::diff(a, b, opt);
    EXPECT_EQ(r.regressions, 0u);
    bool saw_new = false, saw_removed = false;
    for (const auto &e : r.entries) {
        EXPECT_TRUE(std::isfinite(e.ratio)) << e.key;
        if (e.key.find("serve.requests") != std::string::npos) {
            EXPECT_EQ(e.status, obsdiff::DiffStatus::New);
            EXPECT_DOUBLE_EQ(e.ratio, 0.0);
            saw_new = true;
        }
        if (e.key.find("serve.errors") != std::string::npos) {
            EXPECT_EQ(e.status, obsdiff::DiffStatus::Removed);
            EXPECT_DOUBLE_EQ(e.ratio, 0.0);
            saw_removed = true;
        }
    }
    EXPECT_TRUE(saw_new);
    EXPECT_TRUE(saw_removed);

    // The markdown report labels them instead of printing a ratio.
    const std::string md = obsdiff::markdownReport(r, "a", "b", opt);
    EXPECT_NE(md.find("New / removed metrics"), std::string::npos);
    EXPECT_NE(md.find("| new |"), std::string::npos);
    EXPECT_NE(md.find("| removed |"), std::string::npos);
}

TEST(ObsDiff, NegativeBaselineNeverFlipsTheGate)
{
    // Negative values (losses, deltas) must not gate: vb/va with
    // va < 0 flips the comparison's sign. Same-sign negatives keep a
    // meaningful ratio; sign flips carry none.
    const json::Value a = json::parse(
        "{\"gauges\": {\"train.loss_delta_per_s\": -4.0, "
        "\"train.score_wall\": -2.0}}");
    const json::Value b = json::parse(
        "{\"gauges\": {\"train.loss_delta_per_s\": -2.0, "
        "\"train.score_wall\": 2.0}}");
    obsdiff::DiffOptions opt;
    const obsdiff::DiffResult r = obsdiff::diff(a, b, opt);
    EXPECT_EQ(r.regressions, 0u);
    EXPECT_EQ(r.improvements, 0u);
    for (const auto &e : r.entries) {
        EXPECT_TRUE(std::isfinite(e.ratio)) << e.key;
        if (e.key.find("loss_delta") != std::string::npos)
            EXPECT_DOUBLE_EQ(e.ratio, 0.5); // same sign: meaningful
        if (e.key.find("score_wall") != std::string::npos)
            EXPECT_DOUBLE_EQ(e.ratio, 0.0); // sign flip: no ratio
    }
}

TEST(ObsLedger, ConcurrentAppendsNeverTearLines)
{
    // The daemon and the CLI share one ledger; records larger than
    // any stdio buffer must still land as whole lines. Hammer the
    // file from threads with ~32KB records (a full metrics snapshot
    // is this size) and require every line to parse intact.
    TempFile tmp("hwpr_test_ledger_hammer.jsonl");
    const std::string big_payload(32 * 1024, 'x');
    constexpr int kThreads = 8;
    constexpr int kPerThread = 25;
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t)
        writers.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                ledger::Record rec("hammer");
                rec.add("writer", double(t))
                    .add("iter", double(i))
                    .add("payload", big_payload);
                ASSERT_TRUE(ledger::appendTo(tmp.path(), rec));
            }
        });
    for (auto &w : writers)
        w.join();

    std::ifstream in(tmp.path());
    std::size_t lines = 0;
    for (std::string line; std::getline(in, line);) {
        ++lines;
        const json::Value v = json::parse(line); // throws on a tear
        EXPECT_EQ(v.stringOr("command", ""), "hammer");
        EXPECT_EQ(v.stringOr("payload", "").size(),
                  big_payload.size());
    }
    EXPECT_EQ(lines, std::size_t(kThreads) * kPerThread);
}

TEST(ObsDiff, AggregatesTraceSelfAndTotalTime)
{
    // outer [0, 100] wraps inner [10, 40]; sibling lane tid 2.
    const json::Value trace = json::parse(
        "{\"traceEvents\": ["
        "{\"ph\": \"X\", \"tid\": 1, \"name\": \"outer\", "
        "\"ts\": 0, \"dur\": 100},"
        "{\"ph\": \"X\", \"tid\": 1, \"name\": \"inner\", "
        "\"ts\": 10, \"dur\": 30},"
        "{\"ph\": \"X\", \"tid\": 2, \"name\": \"inner\", "
        "\"ts\": 0, \"dur\": 50},"
        "{\"ph\": \"M\", \"tid\": 1, \"name\": \"thread_name\"}"
        "]}");
    const auto stats = obsdiff::aggregateTrace(trace);
    ASSERT_EQ(stats.size(), 2u);
    // Sorted by self time: inner 30+50=80 self, outer 100-30=70.
    EXPECT_EQ(stats[0].name, "inner");
    EXPECT_EQ(stats[0].count, 2u);
    EXPECT_DOUBLE_EQ(stats[0].totalUs, 80.0);
    EXPECT_DOUBLE_EQ(stats[0].selfUs, 80.0);
    EXPECT_EQ(stats[1].name, "outer");
    EXPECT_DOUBLE_EQ(stats[1].totalUs, 100.0);
    EXPECT_DOUBLE_EQ(stats[1].selfUs, 70.0);

    const std::string table = obsdiff::traceTable(stats, 1);
    EXPECT_NE(table.find("inner"), std::string::npos);
    EXPECT_EQ(table.find("outer"), std::string::npos); // limit 1
}

TEST(ObsLedger, AppendsOneParseableLinePerRecord)
{
    TempFile tmp("hwpr_test_ledger.jsonl");
    ledger::Record rec("search");
    rec.add("seed", 7.0)
        .add("platform", "edge-gpu")
        .add("front_hypervolume", 1.25)
        .addRaw("metrics", "{\n  \"counters\": {}\n}");
    ASSERT_TRUE(ledger::appendTo(tmp.path(), rec));
    ASSERT_TRUE(ledger::appendTo(tmp.path(), rec));

    std::ifstream in(tmp.path());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        const json::Value v = json::parse(line);
        EXPECT_EQ(v.stringOr("command", ""), "search");
        EXPECT_NE(v.stringOr("git_sha", ""), "");
        EXPECT_DOUBLE_EQ(v.numberOr("seed", 0.0), 7.0);
        EXPECT_DOUBLE_EQ(v.numberOr("front_hypervolume", 0.0), 1.25);
        // getrusage vitals are stamped on every record.
        EXPECT_GT(v.numberOr("peak_rss_kb", 0.0), 0.0);
        ASSERT_NE(v.find("metrics"), nullptr);
        EXPECT_TRUE(v.find("metrics")->isObject());
        // One record per line: the embedded snapshot was collapsed.
        EXPECT_EQ(line.find('\n'), std::string::npos);
    }
    EXPECT_EQ(lines, 2u);
}

TEST(ObsLedger, PathResolution)
{
    // HWPR_LEDGER wins; empty value disables.
    ::setenv("HWPR_LEDGER", "/tmp/custom_ledger.jsonl", 1);
    EXPECT_EQ(ledger::ledgerPath(), "/tmp/custom_ledger.jsonl");
    ::setenv("HWPR_LEDGER", "", 1);
    EXPECT_EQ(ledger::ledgerPath(), "");
    ::unsetenv("HWPR_LEDGER");
    // Without the env var the default requires bench/out to exist —
    // absent here (tests run from the build tree), recording is off.
    EXPECT_EQ(ledger::ledgerPath(), "");
}

TEST(ObsMeta, RunMetadataCarriesVitals)
{
    const json::Value meta = json::parse(obs::runMetaJson());
    EXPECT_NE(meta.stringOr("git_sha", ""), "");
    EXPECT_NE(meta.stringOr("build", ""), "");
    EXPECT_GT(meta.numberOr("hardware_threads", 0.0), 0.0);
    EXPECT_GT(meta.numberOr("peak_rss_kb", 0.0), 0.0);
    EXPECT_GE(meta.numberOr("user_sec", -1.0), 0.0);

    const obs::ResourceUsage u = obs::resourceUsage();
    EXPECT_GT(u.peakRssKb, 0.0);
}

/**
 * @file
 * Loss-function tests: values, gradients, and the ranking semantics
 * the paper relies on (the listwise loss prefers orderings that put
 * dominant architectures first).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/gradcheck.h"
#include "nn/loss.h"

using namespace hwpr;
using namespace hwpr::nn;

TEST(MseLoss, ZeroAtTarget)
{
    Tensor pred = Tensor::param(Matrix(3, 1, {1, 2, 3}), "p");
    const Tensor loss = mseLoss(pred, {1, 2, 3});
    EXPECT_DOUBLE_EQ(loss.value()(0, 0), 0.0);
}

TEST(MseLoss, KnownValueAndGradient)
{
    Tensor pred = Tensor::param(Matrix(2, 1, {0, 0}), "p");
    Tensor loss = mseLoss(pred, {1, -1});
    EXPECT_DOUBLE_EQ(loss.value()(0, 0), 1.0);
    backward(loss);
    // d/dp_i = 2/n (p_i - t_i) = -1 and +1.
    EXPECT_DOUBLE_EQ(pred.grad()(0, 0), -1.0);
    EXPECT_DOUBLE_EQ(pred.grad()(1, 0), 1.0);
}

TEST(MseLoss, GradCheck)
{
    Rng rng(1);
    Matrix m(5, 1);
    for (double &v : m.raw())
        v = rng.normal();
    Tensor pred = Tensor::param(std::move(m), "p");
    const std::vector<double> target = {0.4, -0.2, 1.0, 0.0, 2.0};
    const double err = gradCheck(
        [&] { return mseLoss(pred, target); }, pred, 1e-6);
    EXPECT_LT(err, 1e-6);
}

TEST(HingeLoss, ZeroWhenMarginSatisfied)
{
    // Scores already ordered with gap > margin.
    Tensor s = Tensor::param(Matrix(3, 1, {3.0, 2.0, 1.0}), "s");
    const Tensor loss =
        pairwiseHingeLoss(s, {30.0, 20.0, 10.0}, 0.1);
    EXPECT_DOUBLE_EQ(loss.value()(0, 0), 0.0);
}

TEST(HingeLoss, PenalizesInvertedPairs)
{
    Tensor s = Tensor::param(Matrix(2, 1, {0.0, 1.0}), "s");
    // target says index 0 should rank higher.
    const Tensor loss = pairwiseHingeLoss(s, {2.0, 1.0}, 0.1);
    // One pair, violation = 0.1 - (0 - 1) = 1.1.
    EXPECT_NEAR(loss.value()(0, 0), 1.1, 1e-12);
}

TEST(HingeLoss, GradCheck)
{
    Rng rng(2);
    Matrix m(6, 1);
    for (double &v : m.raw())
        v = rng.normal();
    Tensor s = Tensor::param(std::move(m), "s");
    const std::vector<double> target = {5, 3, 1, 4, 2, 0};
    const double err = gradCheck(
        [&] { return pairwiseHingeLoss(s, target, 0.25); }, s, 1e-6);
    // Hinge is piecewise linear; away from kinks this is exact.
    EXPECT_LT(err, 1e-5);
}

TEST(ListMle, PrefersCorrectOrdering)
{
    // Ranks: arch0 best (rank 1), arch2 worst. Scores agreeing with
    // the ranks must give a lower loss than inverted scores.
    const std::vector<int> ranks = {1, 2, 3};
    Tensor good = Tensor::param(Matrix(3, 1, {2.0, 1.0, 0.0}), "g");
    Tensor bad = Tensor::param(Matrix(3, 1, {0.0, 1.0, 2.0}), "b");
    const double lg =
        listMleParetoLoss(good, ranks).value()(0, 0);
    const double lb = listMleParetoLoss(bad, ranks).value()(0, 0);
    EXPECT_LT(lg, lb);
}

TEST(ListMle, ShiftInvariant)
{
    const std::vector<int> ranks = {2, 1, 3, 1};
    Tensor a = Tensor::param(Matrix(4, 1, {0.3, 1.0, -0.5, 0.9}), "a");
    Tensor b = Tensor::param(
        Matrix(4, 1, {100.3, 101.0, 99.5, 100.9}), "b");
    EXPECT_NEAR(listMleParetoLoss(a, ranks).value()(0, 0),
                listMleParetoLoss(b, ranks).value()(0, 0), 1e-9);
}

TEST(ListMle, MinimumAtLargeGapsInRankOrder)
{
    // As the correctly-ordered scores separate, the loss approaches
    // the lower bound for the list (0 for fully separated lists,
    // scaled by the 1/n normalization).
    const std::vector<int> ranks = {1, 2, 3, 4};
    double prev = 1e300;
    for (double gap : {0.5, 1.0, 2.0, 4.0, 8.0}) {
        Matrix m(4, 1);
        for (int i = 0; i < 4; ++i)
            m(i, 0) = -gap * i;
        Tensor s = Tensor::param(std::move(m), "s");
        const double loss =
            listMleParetoLoss(s, ranks).value()(0, 0);
        EXPECT_LT(loss, prev);
        prev = loss;
    }
    EXPECT_LT(prev, 0.01);
}

TEST(ListMle, GradCheck)
{
    Rng rng(3);
    Matrix m(8, 1);
    for (double &v : m.raw())
        v = rng.normal();
    Tensor s = Tensor::param(std::move(m), "s");
    const std::vector<int> ranks = {1, 1, 2, 3, 2, 1, 4, 3};
    const double err = gradCheck(
        [&] { return listMleParetoLoss(s, ranks); }, s, 1e-6);
    EXPECT_LT(err, 1e-6);
}

TEST(ListMle, GradientDescentRecoversRanking)
{
    // Optimizing scores alone with the listwise loss must converge to
    // scores ordered like the Pareto ranks (the core training signal).
    Rng rng(4);
    Matrix m(10, 1);
    for (double &v : m.raw())
        v = rng.normal(0.0, 0.01);
    Tensor s = Tensor::param(std::move(m), "s");
    const std::vector<int> ranks = {3, 1, 2, 5, 4, 1, 2, 3, 4, 5};
    for (int iter = 0; iter < 400; ++iter) {
        s.zeroGrad();
        Tensor loss = listMleParetoLoss(s, ranks);
        backward(loss);
        for (std::size_t i = 0; i < 10; ++i)
            s.valueMut()(i, 0) -= 0.1 * s.grad()(i, 0);
    }
    // Every lower-rank (more dominant) arch scores above every
    // higher-rank arch.
    for (std::size_t i = 0; i < 10; ++i)
        for (std::size_t j = 0; j < 10; ++j)
            if (ranks[i] < ranks[j])
                EXPECT_GT(s.value()(i, 0), s.value()(j, 0))
                    << i << " vs " << j;
}

TEST(ListMle, SingletonListIsFinite)
{
    Tensor s = Tensor::param(Matrix(1, 1, {0.7}), "s");
    const Tensor loss = listMleParetoLoss(s, {1});
    EXPECT_TRUE(std::isfinite(loss.value()(0, 0)));
    backward(loss);
    EXPECT_TRUE(std::isfinite(s.grad()(0, 0)));
}

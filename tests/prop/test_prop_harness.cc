/**
 * @file
 * Tests of the property-testing harness itself (src/common/prop.h):
 * per-case seeding is deterministic, failures shrink toward minimal
 * counterexamples, and environment overrides are honored. The harness
 * guards every differential suite in this directory, so it gets its
 * own regression coverage.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/prop.h"

using namespace hwpr;

TEST(PropHarness, PassingPropertyReportsOk)
{
    prop::Config cfg;
    cfg.cases = 200;
    const auto r = prop::forAll<double>(
        cfg, prop::doubleIn(-10.0, 10.0),
        [](const double &v) -> std::optional<std::string> {
            if (v >= -10.0 && v < 10.0)
                return std::nullopt;
            return "out of range";
        });
    EXPECT_TRUE(r.ok) << r.message;
    EXPECT_TRUE(r.message.empty());
}

TEST(PropHarness, SameSeedSameFailureMessage)
{
    prop::Config cfg;
    cfg.seed = 0xDEADBEEF;
    cfg.cases = 500;
    const auto property =
        [](const std::vector<double> &v) -> std::optional<std::string> {
        for (double x : v)
            if (x >= 3.0)
                return "contains an element >= 3";
        return std::nullopt;
    };
    const auto gen = prop::vectorOf(prop::gridDouble(0, 5), 0, 20);
    const auto r1 = prop::forAll<std::vector<double>>(cfg, gen, property);
    const auto r2 = prop::forAll<std::vector<double>>(cfg, gen, property);
    ASSERT_FALSE(r1.ok);
    EXPECT_EQ(r1.message, r2.message);
    // The message carries everything needed to reproduce by hand.
    EXPECT_NE(r1.message.find("seed=0xdeadbeef"), std::string::npos)
        << r1.message;
    EXPECT_NE(r1.message.find("HWPR_PROP_SEED"), std::string::npos);
}

TEST(PropHarness, ShrinksToMinimalCounterexample)
{
    prop::Config cfg;
    cfg.seed = 42;
    cfg.cases = 500;
    // Track the final (shrunken) failing value via capture: the last
    // value the property rejects is the one reported.
    std::vector<double> last_failing;
    const auto r = prop::forAll<std::vector<double>>(
        cfg, prop::vectorOf(prop::gridDouble(0, 5), 0, 24),
        [&last_failing](
            const std::vector<double> &v) -> std::optional<std::string> {
            for (double x : v)
                if (x >= 3.0) {
                    last_failing = v;
                    return "contains an element >= 3";
                }
            return std::nullopt;
        });
    ASSERT_FALSE(r.ok);
    // Greedy shrinking over (drop halves, drop one, zero elements)
    // reaches the canonical minimum: a single offending element.
    ASSERT_EQ(last_failing.size(), 1u) << r.message;
    EXPECT_GE(last_failing[0], 3.0);
}

TEST(PropHarness, ShrinkRespectsStepBudget)
{
    prop::Config cfg;
    cfg.seed = 7;
    cfg.cases = 50;
    cfg.maxShrinkSteps = 3; // Nearly no shrinking allowed.
    std::size_t evaluations = 0;
    const auto r = prop::forAll<std::vector<double>>(
        cfg, prop::vectorOf(prop::gridDouble(0, 5), 8, 24),
        [&evaluations](
            const std::vector<double> &) -> std::optional<std::string> {
            ++evaluations;
            return "always fails";
        });
    ASSERT_FALSE(r.ok);
    // One original evaluation plus at most maxShrinkSteps + 1 retries
    // (the loop checks the cap after incrementing).
    EXPECT_LE(evaluations, 1 + cfg.maxShrinkSteps + 1);
}

TEST(PropHarness, MixSeedDecorrelatesCases)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 10000; ++i)
        seen.insert(prop::mixSeed(123, i));
    EXPECT_EQ(seen.size(), 10000u);
    // Different master seeds diverge immediately.
    EXPECT_NE(prop::mixSeed(1, 0), prop::mixSeed(2, 0));
}

TEST(PropHarness, FromEnvOverridesSeedAndCases)
{
    ASSERT_EQ(setenv("HWPR_PROP_SEED", "0x1234", 1), 0);
    ASSERT_EQ(setenv("HWPR_PROP_CASES", "77", 1), 0);
    const auto cfg = prop::Config::fromEnv(999, 1000);
    unsetenv("HWPR_PROP_SEED");
    unsetenv("HWPR_PROP_CASES");
    EXPECT_EQ(cfg.seed, 0x1234ull);
    EXPECT_EQ(cfg.cases, 77u);

    const auto plain = prop::Config::fromEnv(999, 1000);
    EXPECT_EQ(plain.seed, 999ull);
    EXPECT_EQ(plain.cases, 1000u);
}

TEST(PropHarness, VectorGenRespectsLengthBounds)
{
    prop::Config cfg;
    cfg.cases = 1000;
    const auto r = prop::forAll<std::vector<double>>(
        cfg, prop::vectorOf(prop::doubleIn(0, 1), 3, 9),
        [](const std::vector<double> &v) -> std::optional<std::string> {
            if (v.size() >= 3 && v.size() <= 9)
                return std::nullopt;
            return "length out of bounds";
        });
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropHarness, PointSetFixesDimensionPerCase)
{
    prop::Config cfg;
    cfg.cases = 1000;
    prop::PointSetSpec spec;
    spec.minDims = 2;
    spec.maxDims = 4;
    const auto r = prop::forAll<std::vector<std::vector<double>>>(
        cfg, prop::pointSet(spec),
        [](const std::vector<std::vector<double>> &pts)
            -> std::optional<std::string> {
            for (const auto &p : pts) {
                if (p.size() != pts.front().size())
                    return "mixed dimensionalities in one case";
                if (p.size() < 2 || p.size() > 4)
                    return "dimensionality out of bounds";
            }
            return std::nullopt;
        });
    EXPECT_TRUE(r.ok) << r.message;
}

/**
 * @file
 * Property and fuzz tests for the serialization layer: typed-token
 * round-trips through BinaryWriter/BinaryReader (bitwise, including
 * NaN payloads and infinities), atomicSave/readVerified corruption
 * detection (single-byte flips and truncations must be rejected), and
 * a structure-aware fuzzer for the MOEA checkpoint parser that mutates
 * checkpoint *bodies* and recomputes a valid CRC footer — so the bytes
 * reach the actual parsing code instead of bouncing off the checksum —
 * asserting the loader either rejects cleanly or returns a structurally
 * sane checkpoint, and never crashes.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/prop.h"
#include "common/serialize.h"
#include "nasbench/space.h"
#include "search/moea.h"

using namespace hwpr;

namespace
{

std::uint64_t
bitsOf(double v)
{
    std::uint64_t b = 0;
    std::memcpy(&b, &v, sizeof(b));
    return b;
}

/** One serializable value of any supported type. */
struct Token
{
    enum Kind
    {
        U64,
        I64,
        Double,
        String,
        Doubles,
        Mat
    } kind = U64;
    std::uint64_t u = 0;
    std::int64_t i = 0;
    double d = 0.0;
    std::string s;
    std::vector<double> ds;
    std::size_t mat_rows = 0, mat_cols = 0;
    std::vector<double> mat;
};

prop::Gen<std::vector<Token>>
tokenStreamGen()
{
    prop::Gen<std::vector<Token>> g;
    g.sample = [](Rng &rng) {
        const auto any = prop::anyDouble(0.1);
        const std::size_t n = rng.index(17);
        std::vector<Token> tokens(n);
        for (Token &t : tokens) {
            t.kind = Token::Kind(rng.intIn(0, 5));
            switch (t.kind) {
            case Token::U64:
                t.u = (std::uint64_t(rng.intIn(0, 1 << 30)) << 32) |
                      std::uint64_t(rng.intIn(0, 1 << 30));
                break;
            case Token::I64:
                t.i = std::int64_t(rng.intIn(-(1 << 30), 1 << 30));
                break;
            case Token::Double:
                t.d = any.sample(rng);
                break;
            case Token::String: {
                const std::size_t len = rng.index(21);
                for (std::size_t k = 0; k < len; ++k)
                    t.s.push_back(char(rng.intIn(0, 255)));
                break;
            }
            case Token::Doubles: {
                const std::size_t len = rng.index(9);
                for (std::size_t k = 0; k < len; ++k)
                    t.ds.push_back(any.sample(rng));
                break;
            }
            case Token::Mat: {
                t.mat_rows = std::size_t(rng.intIn(0, 4));
                t.mat_cols =
                    t.mat_rows == 0 ? 0 : std::size_t(rng.intIn(1, 4));
                t.mat.resize(t.mat_rows * t.mat_cols);
                for (double &v : t.mat)
                    v = any.sample(rng);
                break;
            }
            }
        }
        return tokens;
    };
    g.shrink = [](const std::vector<Token> &v) {
        std::vector<std::vector<Token>> out;
        if (!v.empty()) {
            out.emplace_back(v.begin(), v.begin() + v.size() / 2);
            for (std::size_t i = 0; i < v.size(); ++i) {
                std::vector<Token> cand;
                for (std::size_t j = 0; j < v.size(); ++j)
                    if (j != i)
                        cand.push_back(v[j]);
                out.push_back(std::move(cand));
            }
        }
        return out;
    };
    return g;
}

std::string
showTokens(const std::vector<Token> &tokens)
{
    std::ostringstream msg;
    msg << tokens.size() << " tokens:";
    for (const Token &t : tokens)
        msg << " kind=" << int(t.kind);
    return msg.str();
}

void
writeToken(BinaryWriter &w, const Token &t)
{
    switch (t.kind) {
    case Token::U64:
        w.writeU64(t.u);
        break;
    case Token::I64:
        w.writeI64(t.i);
        break;
    case Token::Double:
        w.writeDouble(t.d);
        break;
    case Token::String:
        w.writeString(t.s);
        break;
    case Token::Doubles:
        w.writeDoubles(t.ds);
        break;
    case Token::Mat:
        w.writeMatrix(Matrix(t.mat_rows, t.mat_cols, t.mat));
        break;
    }
}

std::optional<std::string>
readAndCompareToken(BinaryReader &r, const Token &t)
{
    switch (t.kind) {
    case Token::U64:
        if (r.readU64() != t.u)
            return "u64 round-trip mismatch";
        break;
    case Token::I64:
        if (r.readI64() != t.i)
            return "i64 round-trip mismatch";
        break;
    case Token::Double:
        if (bitsOf(r.readDouble()) != bitsOf(t.d))
            return "double round-trip not bitwise identical";
        break;
    case Token::String:
        if (r.readString() != t.s)
            return "string round-trip mismatch";
        break;
    case Token::Doubles: {
        const auto got = r.readDoubles();
        if (got.size() != t.ds.size())
            return "doubles length mismatch";
        for (std::size_t i = 0; i < got.size(); ++i)
            if (bitsOf(got[i]) != bitsOf(t.ds[i]))
                return "doubles element not bitwise identical";
        break;
    }
    case Token::Mat: {
        const Matrix got = r.readMatrix();
        if (got.rows() != t.mat_rows || got.cols() != t.mat_cols)
            return "matrix shape mismatch";
        for (std::size_t i = 0; i < got.raw().size(); ++i)
            if (bitsOf(got.raw()[i]) != bitsOf(t.mat[i]))
                return "matrix element not bitwise identical";
        break;
    }
    }
    return std::nullopt;
}

/** Serialize a token stream into bytes (for file-level tests). */
std::string
tokenBytes(const std::vector<Token> &tokens)
{
    std::ostringstream buf(std::ios::binary);
    BinaryWriter w(buf);
    for (const Token &t : tokens)
        writeToken(w, t);
    return buf.str();
}

/** Footer layout mirrored from serialize.cc for fuzzing. */
constexpr std::uint64_t kFooterMagic = 0x4857505243524346ull;

std::string
withFreshFooter(const std::string &body)
{
    std::string out = body;
    const std::uint64_t fields[3] = {
        body.size(), crc32(body.data(), body.size()), kFooterMagic};
    for (std::uint64_t f : fields)
        for (int b = 0; b < 8; ++b)
            out.push_back(char((f >> (8 * b)) & 0xFF));
    return out;
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), std::streamsize(bytes.size()));
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** A corruption to apply to a saved checkpoint file. */
struct Corruption
{
    enum Kind
    {
        FlipByte,     // flip one raw file byte (CRC must catch it)
        TruncateFile, // drop a tail of the file
        MutateBody,   // flip a body byte, recompute a valid footer
        TruncateBody, // truncate the body, recompute a valid footer
    } kind = FlipByte;
    /** Fractional position in [0, 1), scaled by the target size. */
    double where = 0.0;
    unsigned char mask = 0xFF;
};

prop::Gen<Corruption>
corruptionGen()
{
    prop::Gen<Corruption> g;
    g.sample = [](Rng &rng) {
        Corruption c;
        c.kind = Corruption::Kind(rng.intIn(0, 3));
        c.where = rng.uniform();
        c.mask = (unsigned char)(rng.intIn(1, 255)); // never identity
        return c;
    };
    return g;
}

std::string
showCorruption(const Corruption &c)
{
    std::ostringstream msg;
    msg << "kind=" << int(c.kind) << " where=" << prop::show(c.where)
        << " mask=" << int(c.mask);
    return msg.str();
}

} // namespace

TEST(PropSerialize, TokenStreamRoundTripsBitwise)
{
    const auto r = prop::forAll<std::vector<Token>>(
        prop::Config::fromEnv(0x5E410001, 1200), tokenStreamGen(),
        showTokens,
        [](const std::vector<Token> &tokens)
            -> std::optional<std::string> {
            std::stringstream buf(std::ios::in | std::ios::out |
                                  std::ios::binary);
            BinaryWriter w(buf);
            for (const Token &t : tokens)
                writeToken(w, t);
            if (!w.ok())
                return "writer failed on valid input";
            BinaryReader rd(buf);
            for (const Token &t : tokens)
                if (auto f = readAndCompareToken(rd, t))
                    return f;
            if (!rd.ok())
                return "reader flagged failure on valid input";
            return std::nullopt;
        });
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropSerialize, AtomicSaveRoundTripsAndRejectsCorruption)
{
    const std::string path = "/tmp/hwpr_prop_atomic.bin";
    const auto r = prop::forAll<std::vector<Token>>(
        prop::Config::fromEnv(0x5E410002, 300), tokenStreamGen(),
        showTokens,
        [&path](const std::vector<Token> &tokens)
            -> std::optional<std::string> {
            const std::string body = tokenBytes(tokens);
            if (!atomicSave(path, [&tokens](BinaryWriter &w) {
                    for (const Token &t : tokens)
                        writeToken(w, t);
                }))
                return "atomicSave failed on valid input";
            std::string got;
            if (!readVerified(path, got))
                return "readVerified rejected an intact file";
            if (got != body)
                return "verified body differs from written body";

            // Any single flipped byte must be rejected.
            const std::string file = readFile(path);
            const std::size_t pos =
                (body.size() * 7919) % file.size();
            std::string flipped = file;
            flipped[pos] = char(flipped[pos] ^ 0x5A);
            writeFile(path, flipped);
            std::string rejected;
            if (readVerified(path, rejected))
                return "readVerified accepted a flipped byte";
            if (!rejected.empty())
                return "rejected read left bytes in the body";

            // Any truncation must be rejected too.
            const std::size_t cut = 1 + pos % file.size();
            writeFile(path, file.substr(0, file.size() - cut));
            if (readVerified(path, rejected))
                return "readVerified accepted a truncated file";
            return std::nullopt;
        });
    std::filesystem::remove(path);
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropSerialize, MoeaCheckpointRoundTrips)
{
    const std::string path = "/tmp/hwpr_prop_ckpt_rt.bin";
    Rng rng(11);
    search::MoeaCheckpoint ck;
    ck.populationSize = 6;
    ck.stats.simulatedSeconds = 123.5;
    ck.stats.evaluations = 42;
    ck.stats.generations = 7;
    ck.rngState = rng.saveState();
    for (int i = 0; i < 6; ++i) {
        ck.population.push_back(nasbench::nasBench201().sample(rng));
        ck.fitness.push_back({rng.uniform(), rng.uniform()});
    }
    ASSERT_TRUE(search::saveMoeaCheckpoint(path, ck));
    search::MoeaCheckpoint back;
    ASSERT_TRUE(search::loadMoeaCheckpoint(path, back));
    EXPECT_EQ(back.populationSize, ck.populationSize);
    EXPECT_EQ(back.rngState, ck.rngState);
    ASSERT_EQ(back.population.size(), ck.population.size());
    for (std::size_t i = 0; i < ck.population.size(); ++i)
        EXPECT_EQ(back.population[i].genome, ck.population[i].genome);
    ASSERT_EQ(back.fitness.size(), ck.fitness.size());
    for (std::size_t i = 0; i < ck.fitness.size(); ++i)
        EXPECT_EQ(back.fitness[i], ck.fitness[i]);
    std::filesystem::remove(path);
}

TEST(PropSerialize, CheckpointParserSurvivesStructuredFuzzing)
{
    // Build one valid checkpoint, then fuzz it. MutateBody /
    // TruncateBody recompute a *valid* CRC footer over the mutated
    // body, so the bytes reach the real parser (arch validation,
    // length fields, RNG state text) instead of being stopped by the
    // checksum. The parser must reject cleanly or produce a sane
    // checkpoint — and never crash (ASan/UBSan runs guard the "no
    // memory error" half of that claim).
    const std::string base_path = "/tmp/hwpr_prop_ckpt_fuzz_base.bin";
    const std::string fuzz_path = "/tmp/hwpr_prop_ckpt_fuzz.bin";
    Rng rng(23);
    search::MoeaCheckpoint ck;
    ck.populationSize = 5;
    ck.rngState = rng.saveState();
    for (int i = 0; i < 5; ++i) {
        ck.population.push_back(nasbench::fbnet().sample(rng));
        ck.fitness.push_back({rng.uniform(), rng.uniform()});
    }
    ASSERT_TRUE(search::saveMoeaCheckpoint(base_path, ck));
    const std::string file = readFile(base_path);
    ASSERT_GT(file.size(), 24u);
    const std::string body = file.substr(0, file.size() - 24);

    const auto r = prop::forAll<Corruption>(
        prop::Config::fromEnv(0x5E410003, 1000), corruptionGen(),
        showCorruption,
        [&](const Corruption &c) -> std::optional<std::string> {
            std::string bytes;
            switch (c.kind) {
            case Corruption::FlipByte: {
                bytes = file;
                const std::size_t pos =
                    std::size_t(c.where * double(bytes.size()));
                bytes[pos] = char(bytes[pos] ^ c.mask);
                break;
            }
            case Corruption::TruncateFile: {
                const std::size_t keep =
                    std::size_t(c.where * double(file.size()));
                bytes = file.substr(0, keep);
                break;
            }
            case Corruption::MutateBody: {
                std::string mutated = body;
                const std::size_t pos =
                    std::size_t(c.where * double(mutated.size()));
                mutated[pos] = char(mutated[pos] ^ c.mask);
                bytes = withFreshFooter(mutated);
                break;
            }
            case Corruption::TruncateBody: {
                const std::size_t keep =
                    std::size_t(c.where * double(body.size()));
                bytes = withFreshFooter(body.substr(0, keep));
                break;
            }
            }
            writeFile(fuzz_path, bytes);
            search::MoeaCheckpoint out;
            if (!search::loadMoeaCheckpoint(fuzz_path, out)) {
                return std::nullopt; // clean rejection
            }
            // Raw flips and file truncations break the CRC footer by
            // construction, so acceptance there is a checksum bug.
            if (c.kind == Corruption::FlipByte ||
                c.kind == Corruption::TruncateFile)
                return "loader accepted a file with a broken footer";
            // Accepted: must be structurally consistent.
            if (out.population.size() != out.fitness.size())
                return "accepted checkpoint with population/fitness "
                       "size mismatch";
            Rng probe(0);
            if (!probe.restoreState(out.rngState))
                return "accepted checkpoint with unparsable RNG state";
            for (const auto &arch : out.population) {
                const auto &space = nasbench::spaceFor(arch.space);
                if (arch.genome.size() != space.genomeLength())
                    return "accepted checkpoint with wrong genome "
                           "length";
                for (std::size_t p = 0; p < arch.genome.size(); ++p)
                    if (std::size_t(arch.genome[p]) >=
                        space.numOptions(p))
                        return "accepted checkpoint with out-of-range "
                               "gene";
            }
            return std::nullopt;
        });
    std::filesystem::remove(base_path);
    std::filesystem::remove(fuzz_path);
    EXPECT_TRUE(r.ok) << r.message;
}

/**
 * @file
 * Differential property tests for non-dominated sorting: Deb's fast
 * sort in src/pareto vs an independent brute-force "peel the
 * non-dominated set" oracle, on thousands of tie-heavy generated point
 * sets, including NaN-poisoned ones (a misbehaving surrogate's
 * output). Also checks the structural invariants tying paretoRanks,
 * paretoFronts and nonDominatedIndices together.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/prop.h"
#include "pareto/pareto.h"
#include "prop_gens.h"

using namespace hwpr;
using proptest::showPoints;

namespace
{

/** Independent dominance check (minimization), by the definition. */
bool
bruteDominates(const pareto::Point &a, const pareto::Point &b)
{
    bool strictly = false;
    for (std::size_t d = 0; d < a.size(); ++d) {
        if (a[d] > b[d])
            return false;
        if (a[d] < b[d])
            strictly = true;
    }
    return strictly;
}

bool
hasNan(const pareto::Point &p)
{
    for (double v : p)
        if (std::isnan(v))
            return true;
    return false;
}

/**
 * Oracle ranks by repeated peeling: rank 1 is the set of valid points
 * dominated by no other remaining valid point; remove it and repeat.
 * NaN-carrying points are excluded and share the rank right after the
 * last finite front (rank 1 when no point is finite), mirroring the
 * documented contract of paretoRanks().
 */
std::vector<int>
bruteRanks(const std::vector<pareto::Point> &points)
{
    const std::size_t n = points.size();
    std::vector<int> ranks(n, 0);
    std::vector<bool> assigned(n, false);
    std::size_t num_valid = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (hasNan(points[i]))
            assigned[i] = true; // excluded from peeling
        else
            ++num_valid;
    }

    int rank = 0;
    std::size_t remaining = num_valid;
    while (remaining > 0) {
        ++rank;
        std::vector<std::size_t> front;
        for (std::size_t i = 0; i < n; ++i) {
            if (assigned[i])
                continue;
            bool dominated = false;
            for (std::size_t j = 0; j < n && !dominated; ++j)
                if (j != i && !assigned[j] &&
                    bruteDominates(points[j], points[i]))
                    dominated = true;
            if (!dominated)
                front.push_back(i);
        }
        for (std::size_t i : front) {
            ranks[i] = rank;
            assigned[i] = true;
        }
        remaining -= front.size();
    }

    if (num_valid < n) {
        const int worst = num_valid == 0 ? 1 : rank + 1;
        for (std::size_t i = 0; i < n; ++i)
            if (hasNan(points[i]))
                ranks[i] = worst;
    }
    return ranks;
}

std::optional<std::string>
checkAgainstOracle(const std::vector<pareto::Point> &pts)
{
    const std::vector<int> fast = pareto::paretoRanks(pts);
    const std::vector<int> slow = bruteRanks(pts);
    if (fast != slow) {
        std::ostringstream msg;
        msg << "fast ranks " << prop::show(fast) << " != oracle "
            << prop::show(slow);
        return msg.str();
    }
    return std::nullopt;
}

} // namespace

TEST(PropPareto, RanksMatchBruteForcePeel)
{
    // Tie-heavy finite grids: duplicated coordinates (and whole
    // duplicated points) are the hard cases for dominance code.
    prop::PointSetSpec spec;
    spec.maxPoints = 24;
    spec.value = prop::gridDouble(0, 5);
    const auto r = prop::forAll<std::vector<std::vector<double>>>(
        prop::Config::fromEnv(0x9A7E70, 1200), prop::pointSet(spec),
        showPoints, checkAgainstOracle);
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropPareto, RanksMatchBruteForceWithSpecials)
{
    // Same oracle with NaN / +-Inf injected: NaN points must share
    // the worst rank, infinities order normally.
    prop::PointSetSpec spec;
    spec.maxPoints = 16;
    spec.value = prop::anyDouble(0.15);
    const auto r = prop::forAll<std::vector<std::vector<double>>>(
        prop::Config::fromEnv(0x9A7E71, 1200), prop::pointSet(spec),
        showPoints, checkAgainstOracle);
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropPareto, FrontsPartitionAndAgreeWithRanks)
{
    prop::PointSetSpec spec;
    spec.maxPoints = 20;
    spec.value = prop::gridDouble(0, 4);
    const auto r = prop::forAll<std::vector<std::vector<double>>>(
        prop::Config::fromEnv(0x9A7E72, 1000), prop::pointSet(spec),
        showPoints,
        [](const std::vector<pareto::Point> &pts)
            -> std::optional<std::string> {
            const auto ranks = pareto::paretoRanks(pts);
            const auto fronts = pareto::paretoFronts(pts);
            std::vector<bool> seen(pts.size(), false);
            for (std::size_t f = 0; f < fronts.size(); ++f) {
                for (std::size_t i : fronts[f]) {
                    if (i >= pts.size())
                        return "front index out of range";
                    if (seen[i])
                        return "point assigned to two fronts";
                    seen[i] = true;
                    if (ranks[i] != int(f) + 1)
                        return "front membership disagrees with rank";
                }
            }
            for (std::size_t i = 0; i < pts.size(); ++i)
                if (!seen[i])
                    return "point missing from every front";

            const auto nd = pareto::nonDominatedIndices(pts);
            std::size_t rank1 = 0;
            for (int rk : ranks)
                if (rk == 1)
                    ++rank1;
            if (nd.size() != rank1)
                return "nonDominatedIndices size != rank-1 count";
            for (std::size_t i : nd)
                if (ranks[i] != 1)
                    return "nonDominatedIndices returned a rank>1 point";
            return std::nullopt;
        });
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropPareto, Rank1IsExactlyTheNonDominatedSet)
{
    prop::PointSetSpec spec;
    spec.minPoints = 1;
    spec.maxPoints = 20;
    spec.value = prop::gridDouble(0, 5);
    const auto r = prop::forAll<std::vector<std::vector<double>>>(
        prop::Config::fromEnv(0x9A7E73, 1000), prop::pointSet(spec),
        showPoints,
        [](const std::vector<pareto::Point> &pts)
            -> std::optional<std::string> {
            const auto ranks = pareto::paretoRanks(pts);
            for (std::size_t i = 0; i < pts.size(); ++i) {
                bool dominated = false;
                for (std::size_t j = 0; j < pts.size() && !dominated;
                     ++j)
                    if (j != i && bruteDominates(pts[j], pts[i]))
                        dominated = true;
                if ((ranks[i] == 1) == dominated)
                    return "rank-1 membership disagrees with "
                           "dominance definition";
            }
            return std::nullopt;
        });
    EXPECT_TRUE(r.ok) << r.message;
}

/**
 * @file
 * Property tests for the dominance-classifier surrogate family:
 *  - dominanceLabel() agrees with a from-scratch oracle over
 *    pareto::dominates on generated objective pairs, including the
 *    NaN worst-rank convention;
 *  - predictBatch() is bitwise identical to one-at-a-time queries and
 *    invariant to the global thread count;
 *  - rankBatch() (the memoized-encoder fast path) is bit-identical to
 *    predictBatch() — the head stays fp64, so tau = 1 by construction;
 *  - a save/load round trip reproduces predictions and dominance
 *    counts bit for bit.
 *
 * The fixture's encoder dims are multiples of 4 (activation kernel
 * lane width) — the same condition the other families rely on for
 * exact batched-vs-scalar identity.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/prop.h"
#include "common/threadpool.h"
#include "core/batch_plan.h"
#include "core/dominance.h"
#include "nasbench/dataset.h"
#include "pareto/pareto.h"
#include "prop_gens.h"

using namespace hwpr;

namespace
{

const nasbench::SampledDataset &
propData()
{
    static const nasbench::SampledDataset data = [] {
        static nasbench::Oracle oracle(nasbench::DatasetId::Cifar10);
        Rng rng(73);
        return nasbench::SampledDataset::sample(
            {&nasbench::nasBench201(), &nasbench::fbnet()}, oracle,
            200, 140, 30, rng);
    }();
    return data;
}

/** One dominance classifier, fitted once on the tiny dataset. */
const core::DominanceSurrogate &
fitted()
{
    static const std::unique_ptr<core::DominanceSurrogate> model = [] {
        core::DominanceConfig cfg;
        cfg.encoder.gcnHidden = 16; // multiples of 4: lane-phase safe
        cfg.encoder.lstmHidden = 16;
        cfg.encoder.embedDim = 8;
        cfg.headHidden = {16, 8};
        cfg.referenceSize = 24;
        cfg.maxPairsPerEpoch = 3000;
        cfg.maxValPairs = 500;
        auto m = std::make_unique<core::DominanceSurrogate>(
            cfg, nasbench::DatasetId::Cifar10, 29);
        core::TrainConfig quick;
        quick.epochs = 3;
        quick.patience = 3;
        quick.batchSize = 64;
        const auto &data = propData();
        m->train(data.select(data.trainIdx),
                 data.select(data.valIdx), hw::PlatformId::EdgeGpu,
                 quick);
        return m;
    }();
    return *model;
}

/** Objective-vector pair where each coordinate may be NaN. */
using PointPair = std::pair<pareto::Point, pareto::Point>;

prop::Gen<PointPair>
pointPairGen()
{
    prop::Gen<PointPair> g;
    g.sample = [](Rng &rng) {
        const std::size_t dims = std::size_t(rng.intIn(2, 3));
        const auto point = [&](Rng &r) {
            pareto::Point p(dims);
            for (std::size_t d = 0; d < dims; ++d)
                p[d] = r.bernoulli(0.15)
                           ? std::nan("")
                           : std::floor(r.uniform() * 8.0);
            return p;
        };
        PointPair out{point(rng), point(rng)};
        // Equal pairs matter (dominance is strict); force some.
        if (rng.bernoulli(0.2))
            out.second = out.first;
        return out;
    };
    return g;
}

std::string
showPair(const PointPair &pp)
{
    std::ostringstream out;
    out.precision(17);
    out << "a=(";
    for (std::size_t d = 0; d < pp.first.size(); ++d)
        out << (d ? "," : "") << pp.first[d];
    out << ") b=(";
    for (std::size_t d = 0; d < pp.second.size(); ++d)
        out << (d ? "," : "") << pp.second[d];
    out << ")";
    return out.str();
}

/** Batch of architectures from either space (past the chunk grain). */
prop::Gen<std::vector<nasbench::Architecture>>
batchGen()
{
    prop::Gen<std::vector<nasbench::Architecture>> g;
    const prop::Gen<nasbench::Architecture> arch = proptest::archGen();
    g.sample = [arch](Rng &rng) {
        const std::size_t n = std::size_t(rng.intIn(1, 40));
        std::vector<nasbench::Architecture> out;
        out.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            out.push_back(arch.sample(rng));
        return out;
    };
    g.shrink = [](const std::vector<nasbench::Architecture> &batch) {
        std::vector<std::vector<nasbench::Architecture>> out;
        if (batch.size() <= 1)
            return out;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            std::vector<nasbench::Architecture> cand;
            for (std::size_t j = 0; j < batch.size(); ++j)
                if (j != i)
                    cand.push_back(batch[j]);
            out.push_back(std::move(cand));
        }
        return out;
    };
    return g;
}

std::string
showBatch(const std::vector<nasbench::Architecture> &batch)
{
    std::ostringstream out;
    out << batch.size() << " archs: ";
    for (std::size_t i = 0; i < batch.size(); ++i)
        out << (i ? " " : "") << proptest::showArch(batch[i]);
    return out.str();
}

std::optional<std::string>
expectSameBits(const Matrix &a, const Matrix &b, const char *what)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return std::string(what) + ": shape mismatch";
    for (std::size_t i = 0; i < a.raw().size(); ++i)
        if (a.raw()[i] != b.raw()[i]) {
            std::ostringstream msg;
            msg.precision(17);
            msg << what << ": element " << i << " differs: "
                << a.raw()[i] << " vs " << b.raw()[i];
            return msg.str();
        }
    return std::nullopt;
}

} // namespace

TEST(PropDominance, LabelMatchesParetoOracleIncludingNaN)
{
    const auto r = prop::forAll<PointPair>(
        prop::Config::fromEnv(0xD0111A8E, 400), pointPairGen(),
        showPair,
        [](const PointPair &pp) -> std::optional<std::string> {
            const pareto::Point &a = pp.first;
            const pareto::Point &b = pp.second;
            const auto hasNan = [](const pareto::Point &p) {
                for (const double v : p)
                    if (std::isnan(v))
                        return true;
                return false;
            };
            // Oracle: the worst-rank convention of pareto::paretoRanks
            // spelled out — a NaN point shares one rank strictly worse
            // than every finite point, so it dominates nothing (not
            // even another NaN point), a finite point dominates every
            // NaN point, and finite pairs follow pareto::dominates.
            bool want;
            if (hasNan(a))
                want = false;
            else if (hasNan(b))
                want = true;
            else
                want = pareto::dominates(a, b);
            const bool got = core::dominanceLabel(a, b);
            if (got != want) {
                std::ostringstream msg;
                msg << "label " << got << " != oracle " << want;
                return msg.str();
            }
            // Strictness: nothing ever dominates itself.
            if (core::dominanceLabel(a, a))
                return std::string("a dominates itself");
            // Antisymmetry on the dominating side.
            if (got && core::dominanceLabel(b, a))
                return std::string("both directions dominate");
            return std::nullopt;
        });
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropDominance, BatchedMatchesScalarBitwise)
{
    const core::DominanceSurrogate &model = fitted();
    const auto r = prop::forAll<std::vector<nasbench::Architecture>>(
        prop::Config::fromEnv(0xD0111A8F, 20), batchGen(), showBatch,
        [&](const std::vector<nasbench::Architecture> &batch)
            -> std::optional<std::string> {
            core::BatchPlan plan;
            const Matrix batched = model.predictBatch(batch, plan);
            Matrix singles(batched.rows(), batched.cols());
            core::BatchPlan one;
            for (std::size_t i = 0; i < batch.size(); ++i) {
                const Matrix &row = model.predictBatch(
                    std::span<const nasbench::Architecture>(
                        &batch[i], 1),
                    one);
                singles(i, 0) = row(0, 0);
            }
            if (auto err = expectSameBits(
                    batched, singles, "batched vs one-at-a-time"))
                return err;
            // scoreBatch is the same pipeline behind a local plan.
            const std::vector<double> scores = model.scoreBatch(batch);
            for (std::size_t i = 0; i < batch.size(); ++i)
                if (scores[i] != batched(i, 0))
                    return std::string(
                        "scoreBatch diverges from predictBatch");
            return std::nullopt;
        });
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropDominance, RankPathBitIdenticalAndThreadInvariant)
{
    const core::DominanceSurrogate &model = fitted();
    const std::size_t before = ExecContext::global().threads();
    const auto r = prop::forAll<std::vector<nasbench::Architecture>>(
        prop::Config::fromEnv(0xD0111A90, 12), batchGen(), showBatch,
        [&](const std::vector<nasbench::Architecture> &batch)
            -> std::optional<std::string> {
            ExecContext::setGlobalThreads(1);
            core::BatchPlan plan;
            const Matrix serial = model.predictBatch(batch, plan);
            // The rank fast path (memoized encoder + fp64 head) must
            // reproduce predict exactly: tau = 1 by construction.
            core::BatchPlan rplan;
            const Matrix ranked = model.rankBatch(batch, rplan);
            if (auto err = expectSameBits(serial, ranked,
                                          "rank vs predict"))
                return err;
            for (std::size_t threads : {2u, 4u, 8u}) {
                ExecContext::setGlobalThreads(threads);
                core::BatchPlan tplan;
                const Matrix &parallel =
                    model.predictBatch(batch, tplan);
                if (auto err = expectSameBits(
                        serial, parallel, "thread-count variance"))
                    return err;
                core::BatchPlan trank;
                const Matrix &rparallel =
                    model.rankBatch(batch, trank);
                if (auto err = expectSameBits(
                        serial, rparallel,
                        "rank thread-count variance"))
                    return err;
            }
            return std::nullopt;
        });
    ExecContext::setGlobalThreads(before);
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropDominance, CheckpointRoundTripIsBitExact)
{
    const core::DominanceSurrogate &model = fitted();
    const std::string path =
        ::testing::TempDir() + "prop_dominance.ckpt";
    ASSERT_TRUE(model.save(path));
    const auto loaded = core::DominanceSurrogate::load(path);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->familyLabel(), "dominance");
    EXPECT_EQ(loaded->platform(), model.platform());
    EXPECT_EQ(loaded->referenceArchs().size(),
              model.referenceArchs().size());

    const auto r = prop::forAll<std::vector<nasbench::Architecture>>(
        prop::Config::fromEnv(0xD0111A91, 15), batchGen(), showBatch,
        [&](const std::vector<nasbench::Architecture> &batch)
            -> std::optional<std::string> {
            core::BatchPlan pa, pb;
            const Matrix want = model.predictBatch(batch, pa);
            const Matrix got = loaded->predictBatch(batch, pb);
            if (auto err = expectSameBits(want, got,
                                          "loaded vs original"))
                return err;
            // The dominance-count path the MOEA consumes survives
            // the round trip too.
            core::BatchPlan ca, cb;
            const auto wantCounts = model.dominanceCounts(batch, ca);
            const auto gotCounts =
                loaded->dominanceCounts(batch, cb);
            if (wantCounts != gotCounts)
                return std::string("dominance counts diverge");
            for (const double c : wantCounts)
                if (c < 0.0 || c >= double(batch.size()))
                    return std::string("count out of range");
            return std::nullopt;
        });
    EXPECT_TRUE(r.ok) << r.message;
    std::remove(path.c_str());
}

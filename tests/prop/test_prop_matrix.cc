/**
 * @file
 * Differential property tests for the GEMM stack: the cache-tiled,
 * register-blocked kernels (matmul / transposedMatmul /
 * matmulTransposed and their *Into / accumulate variants) vs a plain
 * triple-loop oracle written here from the documented contract — one
 * ascending-k accumulation chain per output element, seeded with the
 * existing output value when accumulating.
 *
 * Two comparison strengths, deliberately distinct:
 *  - Exact (==) where the contract promises bit-identity: tiled vs
 *    the shipped naive kernels (same translation unit, same FP
 *    contraction), Into vs the allocating entry points, and
 *    accumulate-onto-zero vs the plain product.
 *  - Within-epsilon against the oracle in this file: the compiler may
 *    contract a*b+c into fma differently across translation units, so
 *    an independent reimplementation can legitimately differ in the
 *    last ulp while still catching real indexing/tiling bugs.
 */

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/prop.h"

using namespace hwpr;

namespace
{

enum class Op
{
    AB,  // a(m x k) * b(k x n)
    AtB, // a(k x m)^T * b(k x n)
    ABt, // a(m x k) * b(n x k)^T
};

struct GemmCase
{
    Op op = Op::AB;
    bool into = false;       // use the *Into entry point
    bool accumulate = false; // seed the chain from existing output
    Matrix a, b, out;        // out pre-filled for the accumulate case
};

/**
 * Independent reference: the documented accumulation order, nothing
 * else. Each output element is one scalar chain over ascending k,
 * starting from the existing output value when accumulating.
 */
Matrix
gemmOracle(const GemmCase &c)
{
    std::size_t m = 0, n = 0, kk = 0;
    switch (c.op) {
    case Op::AB:
        m = c.a.rows();
        kk = c.a.cols();
        n = c.b.cols();
        break;
    case Op::AtB:
        m = c.a.cols();
        kk = c.a.rows();
        n = c.b.cols();
        break;
    case Op::ABt:
        m = c.a.rows();
        kk = c.a.cols();
        n = c.b.rows();
        break;
    }
    Matrix out(m, n);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double acc =
                c.into && c.accumulate ? c.out(i, j) : 0.0;
            for (std::size_t t = 0; t < kk; ++t) {
                double lhs = 0.0, rhs = 0.0;
                switch (c.op) {
                case Op::AB:
                    lhs = c.a(i, t);
                    rhs = c.b(t, j);
                    break;
                case Op::AtB:
                    lhs = c.a(t, i);
                    rhs = c.b(t, j);
                    break;
                case Op::ABt:
                    lhs = c.a(i, t);
                    rhs = c.b(j, t);
                    break;
                }
                acc += lhs * rhs;
            }
            out(i, j) = acc;
        }
    }
    return out;
}

Matrix
runTiled(const GemmCase &c)
{
    if (!c.into) {
        switch (c.op) {
        case Op::AB:
            return c.a.matmul(c.b);
        case Op::AtB:
            return c.a.transposedMatmul(c.b);
        case Op::ABt:
            return c.a.matmulTransposed(c.b);
        }
    }
    Matrix out = c.out;
    switch (c.op) {
    case Op::AB:
        c.a.matmulInto(c.b, out, c.accumulate);
        break;
    case Op::AtB:
        c.a.transposedMatmulInto(c.b, out, c.accumulate);
        break;
    case Op::ABt:
        c.a.matmulTransposedInto(c.b, out, c.accumulate);
        break;
    }
    return out;
}

Matrix
runNaive(const GemmCase &c)
{
    switch (c.op) {
    case Op::AB:
        return c.a.matmulNaive(c.b);
    case Op::AtB:
        return c.a.transposedMatmulNaive(c.b);
    case Op::ABt:
        return c.a.matmulTransposedNaive(c.b);
    }
    return {};
}

prop::Gen<GemmCase>
gemmGen()
{
    prop::Gen<GemmCase> g;
    g.sample = [](Rng &rng) {
        GemmCase c;
        c.op = Op(rng.intIn(0, 2));
        c.into = rng.bernoulli(0.5);
        c.accumulate = c.into && rng.bernoulli(0.5);
        const std::size_t m = std::size_t(rng.intIn(1, 20));
        const std::size_t kk = std::size_t(rng.intIn(1, 20));
        const std::size_t n = std::size_t(rng.intIn(1, 20));
        // Mix exactly-representable grid values with full-precision
        // draws: the former make mismatches obvious, the latter catch
        // any reassociation of the accumulation chain.
        auto draw = [&rng]() {
            return rng.bernoulli(0.5) ? double(rng.intIn(-3, 3))
                                      : rng.normal();
        };
        switch (c.op) {
        case Op::AB:
            c.a = Matrix(m, kk);
            c.b = Matrix(kk, n);
            break;
        case Op::AtB:
            c.a = Matrix(kk, m);
            c.b = Matrix(kk, n);
            break;
        case Op::ABt:
            c.a = Matrix(m, kk);
            c.b = Matrix(n, kk);
            break;
        }
        c.out = Matrix(m, n);
        for (Matrix *mat : {&c.a, &c.b, &c.out})
            for (double &v : mat->raw())
                v = draw();
        return c;
    };
    g.shrink = [](const GemmCase &c) {
        std::vector<GemmCase> out;
        // Zero one operand at a time: isolates which input drives the
        // mismatch while keeping the (shape, op, flags) fixed.
        for (Matrix GemmCase::*field :
             {&GemmCase::a, &GemmCase::b, &GemmCase::out}) {
            bool already_zero = true;
            for (double v : (c.*field).raw())
                already_zero = already_zero && v == 0.0;
            if (!already_zero) {
                GemmCase cand = c;
                (cand.*field).fill(0.0);
                out.push_back(std::move(cand));
            }
        }
        return out;
    };
    return g;
}

std::string
showGemm(const GemmCase &c)
{
    std::ostringstream msg;
    msg << "op=" << int(c.op) << " into=" << c.into
        << " accumulate=" << c.accumulate << " a(" << c.a.rows() << "x"
        << c.a.cols() << ")=" << prop::show(c.a.raw()) << " b("
        << c.b.rows() << "x" << c.b.cols() << ")="
        << prop::show(c.b.raw());
    if (c.into && c.accumulate)
        msg << " out0=" << prop::show(c.out.raw());
    return msg.str();
}

std::optional<std::string>
compareMats(const Matrix &got, const Matrix &want,
            const std::string &label, double tol)
{
    if (got.rows() != want.rows() || got.cols() != want.cols())
        return label + ": shape mismatch";
    for (std::size_t i = 0; i < got.raw().size(); ++i) {
        const double g = got.raw()[i], w = want.raw()[i];
        const double bound = tol * std::max(1.0, std::fabs(w));
        if (!(std::fabs(g - w) <= bound)) {
            std::ostringstream msg;
            msg << label << ": element " << i << " differs: got "
                << prop::show(g) << ", oracle " << prop::show(w);
            return msg.str();
        }
    }
    return std::nullopt;
}

std::optional<std::string>
bitIdentical(const Matrix &got, const Matrix &want,
             const std::string &label)
{
    return compareMats(got, want, label, 0.0);
}

} // namespace

TEST(PropMatrix, TiledGemmMatchesIndependentOracle)
{
    // Cross-TU differential check: catches indexing, tiling and
    // transpose bugs. Tolerance absorbs per-term fma contraction
    // differences only (the accumulation order itself must match, or
    // errors grow far past 1e-10 on adversarial magnitudes).
    const auto r = prop::forAll<GemmCase>(
        prop::Config::fromEnv(0x6E4D4D01, 1200), gemmGen(), showGemm,
        [](const GemmCase &c) -> std::optional<std::string> {
            return compareMats(runTiled(c), gemmOracle(c), "tiled",
                               1e-10);
        });
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropMatrix, TiledGemmBitIdenticalToShippedNaiveKernels)
{
    // The documented contract: tiling and threading never change the
    // per-element accumulation chain, so tiled == naive exactly.
    // Additionally the Into entry points (with and without a zero
    // accumulate seed) must be bit-identical to the allocating ones.
    const auto r = prop::forAll<GemmCase>(
        prop::Config::fromEnv(0x6E4D4D02, 1200), gemmGen(), showGemm,
        [](const GemmCase &c) -> std::optional<std::string> {
            GemmCase plain = c;
            plain.into = false;
            plain.accumulate = false;
            const Matrix reference = runTiled(plain);
            if (auto f = bitIdentical(reference, runNaive(plain),
                                      "tiled vs naive"))
                return f;

            GemmCase into = c;
            into.into = true;
            into.accumulate = false;
            if (auto f = bitIdentical(runTiled(into), reference,
                                      "Into vs allocating"))
                return f;

            // accumulate=true onto a zero output runs the exact same
            // chain seeded with 0.0 — bit-identical to the product.
            GemmCase acc = c;
            acc.into = true;
            acc.accumulate = true;
            acc.out.fill(0.0);
            if (auto f = bitIdentical(runTiled(acc), reference,
                                      "accumulate onto zero"))
                return f;
            return std::nullopt;
        });
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropMatrix, AccumulateSeedsChainFromExistingOutput)
{
    // With accumulate, the chain starts from the existing output
    // value; the oracle reproduces that semantic independently.
    const auto r = prop::forAll<GemmCase>(
        prop::Config::fromEnv(0x6E4D4D03, 1000), gemmGen(), showGemm,
        [](const GemmCase &c) -> std::optional<std::string> {
            GemmCase acc = c;
            acc.into = true;
            acc.accumulate = true;
            return compareMats(runTiled(acc), gemmOracle(acc),
                               "accumulate", 1e-10);
        });
    EXPECT_TRUE(r.ok) << r.message;
}

/**
 * @file
 * Property tests for the shared search-budget contract across all
 * three drivers (RandomSearch, Moea, AgingEvolution): the budget is
 * checked before every charge, so the accounted simulated cost never
 * exceeds the budget; stoppedByBudget is set iff the budget (not the
 * cap) ended the run; a budget below even the first charge yields an
 * empty budget-stopped result; and same-seed runs are bit-identical.
 *
 * These properties are what flushed out the AgingEvolution overshoot
 * (the seed population was charged before the budget check) and the
 * Moea post-charge budget test.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/prop.h"
#include "search/aging.h"
#include "search/moea.h"

using namespace hwpr;
using namespace hwpr::search;

namespace
{

/** Cost per evaluation; powers of two keep the accounting exact. */
constexpr double kCost = 8.0;

/** Deterministic two-objective evaluator with a pure batch cost. */
class ToyEvaluator : public Evaluator
{
  public:
    EvalKind kind() const override
    {
        return EvalKind::ObjectiveVector;
    }
    std::string name() const override { return "toy"; }
    std::size_t numObjectives() const override { return 2; }

    std::vector<pareto::Point>
    evaluate(const std::vector<nasbench::Architecture> &archs) override
    {
        std::vector<pareto::Point> out;
        out.reserve(archs.size());
        for (const auto &a : archs) {
            double sum = 0.0, alt = 0.0;
            for (std::size_t i = 0; i < a.genome.size(); ++i) {
                sum += double(a.genome[i]);
                alt += (i % 2 ? -1.0 : 1.0) * double(a.genome[i]);
            }
            out.push_back({sum, alt});
        }
        return out;
    }

    double
    simulatedCostSeconds(std::size_t batch) const override
    {
        return kCost * double(batch);
    }
};

struct Scenario
{
    int driver = 0; // 0 random, 1 aging, 2 moea
    int pop = 2;
    int cap = 1;          // evals / extra evals / generations
    int budget_units = 0; // budget = units * kCost / 2 (0 = disabled)
    std::uint64_t seed = 1;
};

prop::Gen<Scenario>
scenarioGen()
{
    prop::Gen<Scenario> g;
    g.sample = [](Rng &rng) {
        Scenario s;
        s.driver = rng.intIn(0, 2);
        s.pop = rng.intIn(2, 5);
        s.cap = rng.intIn(1, s.driver == 2 ? 5 : 16);
        s.budget_units = rng.intIn(0, 40);
        s.seed = std::uint64_t(rng.intIn(1, 1 << 20));
        return s;
    };
    g.shrink = [](const Scenario &s) {
        std::vector<Scenario> out;
        auto push = [&out](Scenario c) { out.push_back(c); };
        if (s.budget_units > 0) {
            Scenario c = s;
            c.budget_units = 0;
            push(c);
        }
        if (s.cap > 1) {
            Scenario c = s;
            c.cap = 1;
            push(c);
        }
        if (s.pop > 2) {
            Scenario c = s;
            c.pop = 2;
            push(c);
        }
        return out;
    };
    return g;
}

std::string
showScenario(const Scenario &s)
{
    std::ostringstream msg;
    msg << "driver=" << s.driver << " pop=" << s.pop
        << " cap=" << s.cap << " budget=" << s.budget_units * kCost / 2
        << " seed=" << s.seed;
    return msg.str();
}

struct RunOutcome
{
    SearchResult result;
    std::size_t cap_count = 0;  // cap in driver-native units
    std::size_t seed_batch = 1; // size of the first charge
    std::size_t step_batch = 1; // size of every later charge
    bool cap_reached = false;
};

RunOutcome
runScenario(const Scenario &s)
{
    const SearchDomain domain = SearchDomain::unionBenchmarks();
    ToyEvaluator eval;
    Rng rng(s.seed);
    const double budget = s.budget_units * kCost / 2.0;

    RunOutcome out;
    if (s.driver == 0) {
        RandomSearchConfig cfg;
        cfg.budget = std::size_t(s.cap);
        cfg.keep = std::size_t(s.pop);
        cfg.simulatedBudgetSeconds = budget;
        out.result = RandomSearch(cfg).run(domain, eval, rng);
        out.cap_count = cfg.budget;
        out.cap_reached = out.result.stats.evaluations == cfg.budget;
    } else if (s.driver == 1) {
        AgingConfig cfg;
        cfg.populationSize = std::size_t(s.pop);
        cfg.totalEvaluations = std::size_t(s.pop + s.cap);
        cfg.sampleSize = 3;
        cfg.keep = std::size_t(s.pop);
        cfg.simulatedBudgetSeconds = budget;
        out.result = AgingEvolution(cfg).run(domain, eval, rng);
        out.cap_count = cfg.totalEvaluations;
        out.seed_batch = cfg.populationSize;
        out.cap_reached =
            out.result.stats.evaluations == cfg.totalEvaluations;
    } else {
        MoeaConfig cfg;
        cfg.populationSize = std::size_t(s.pop);
        cfg.maxGenerations = std::size_t(s.cap);
        cfg.simulatedBudgetSeconds = budget;
        out.result = Moea(cfg).run(domain, eval, rng);
        out.cap_count = cfg.maxGenerations;
        out.seed_batch = cfg.populationSize;
        out.step_batch = cfg.populationSize;
        out.cap_reached =
            out.result.stats.generations == cfg.maxGenerations;
    }
    return out;
}

} // namespace

TEST(PropSearch, BudgetContractHoldsAcrossAllDrivers)
{
    const auto r = prop::forAll<Scenario>(
        prop::Config::fromEnv(0x5EA4C401, 600), scenarioGen(),
        showScenario,
        [](const Scenario &s) -> std::optional<std::string> {
            const double budget = s.budget_units * kCost / 2.0;
            const RunOutcome run = runScenario(s);
            const SearchStats &st = run.result.stats;

            // Charged cost is exactly cost-per-eval * evaluations and
            // never exceeds an enabled budget.
            if (st.simulatedSeconds !=
                kCost * double(st.evaluations))
                return "simulatedSeconds does not equal evaluations "
                       "times the unit cost";
            if (budget > 0.0 && st.simulatedSeconds > budget)
                return "charged past the simulated budget";

            if (st.stoppedByBudget) {
                if (budget <= 0.0)
                    return "stoppedByBudget with the budget disabled";
                // The budget could not fund the next charge.
                const std::size_t next = st.evaluations == 0
                                             ? run.seed_batch
                                             : run.step_batch;
                if (st.simulatedSeconds + kCost * double(next) <=
                    budget)
                    return "stopped although the next charge was "
                           "affordable";
                if (st.evaluations == 0 &&
                    !run.result.population.empty())
                    return "empty-budget run returned a population";
            } else {
                if (!run.cap_reached)
                    return "run neither budget-stopped nor completed "
                           "its cap";
            }
            return std::nullopt;
        });
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropSearch, SameSeedRunsAreBitIdentical)
{
    const auto r = prop::forAll<Scenario>(
        prop::Config::fromEnv(0x5EA4C402, 300), scenarioGen(),
        showScenario,
        [](const Scenario &s) -> std::optional<std::string> {
            const RunOutcome a = runScenario(s);
            const RunOutcome b = runScenario(s);
            const SearchStats &sa = a.result.stats;
            const SearchStats &sb = b.result.stats;
            if (sa.evaluations != sb.evaluations ||
                sa.generations != sb.generations ||
                sa.simulatedSeconds != sb.simulatedSeconds ||
                sa.stoppedByBudget != sb.stoppedByBudget)
                return "same-seed stats diverged";
            if (a.result.fitness != b.result.fitness)
                return "same-seed fitness diverged";
            if (a.result.population.size() !=
                b.result.population.size())
                return "same-seed population size diverged";
            for (std::size_t i = 0; i < a.result.population.size();
                 ++i) {
                if (a.result.population[i].space !=
                        b.result.population[i].space ||
                    a.result.population[i].genome !=
                        b.result.population[i].genome)
                    return "same-seed population diverged";
            }
            return std::nullopt;
        });
    EXPECT_TRUE(r.ok) << r.message;
}

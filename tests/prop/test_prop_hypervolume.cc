/**
 * @file
 * Differential property tests for hypervolume: the dedicated 2D/3D
 * sweep algorithms vs the independent WFG inclusion-exclusion
 * recursion, a Monte-Carlo volume estimate as a third opinion, and
 * structural invariants (monotonicity under adding points, finiteness
 * under NaN/Inf-poisoned inputs, box bounds).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/prop.h"
#include "common/rng.h"
#include "pareto/pareto.h"
#include "prop_gens.h"

using namespace hwpr;
using proptest::showPoints;

namespace
{

/**
 * The first generated point doubles as the reference point, so the
 * reference varies per case (including references at the grid minimum,
 * where nothing contributes). Requires a finite value generator.
 */
std::optional<std::string>
sweepVsWfg(const std::vector<pareto::Point> &pts)
{
    const pareto::Point ref = pts.front();
    const std::vector<pareto::Point> rest(pts.begin() + 1, pts.end());
    const double fast = pareto::hypervolume(rest, ref);
    const double oracle = pareto::hypervolumeWfg(rest, ref);
    // Both paths sum products of grid coordinates; allow only
    // accumulation-order rounding.
    const double tol = 1e-9 * std::max(1.0, std::fabs(oracle));
    if (!(std::fabs(fast - oracle) <= tol)) {
        std::ostringstream msg;
        msg << "sweep " << prop::show(fast) << " != WFG "
            << prop::show(oracle);
        return msg.str();
    }
    return std::nullopt;
}

} // namespace

TEST(PropHypervolume, Sweep2DMatchesWfg)
{
    prop::PointSetSpec spec;
    spec.minPoints = 1; // pts[0] becomes the reference
    spec.maxPoints = 25;
    spec.minDims = 2;
    spec.maxDims = 2;
    spec.value = prop::gridDouble(0, 5);
    const auto r = prop::forAll<std::vector<std::vector<double>>>(
        prop::Config::fromEnv(0x48560002, 1200), prop::pointSet(spec),
        showPoints, sweepVsWfg);
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropHypervolume, Sweep3DMatchesWfg)
{
    prop::PointSetSpec spec;
    spec.minPoints = 1;
    spec.maxPoints = 17;
    spec.minDims = 3;
    spec.maxDims = 3;
    spec.value = prop::gridDouble(0, 5);
    const auto r = prop::forAll<std::vector<std::vector<double>>>(
        prop::Config::fromEnv(0x48560003, 1200), prop::pointSet(spec),
        showPoints, sweepVsWfg);
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropHypervolume, MatchesMonteCarloEstimate)
{
    // Third, algorithm-free opinion: rejection-sample the dominated
    // region. 2 to 4 dims, reference fixed at 6 per axis so the grid
    // boxes sit inside [0,6]^m.
    prop::PointSetSpec spec;
    spec.maxPoints = 12;
    spec.minDims = 2;
    spec.maxDims = 4;
    spec.value = prop::gridDouble(0, 5);
    const auto r = prop::forAll<std::vector<std::vector<double>>>(
        prop::Config::fromEnv(0x48560004, 200), prop::pointSet(spec),
        showPoints,
        [](const std::vector<pareto::Point> &pts)
            -> std::optional<std::string> {
            const std::size_t m = pts.empty() ? 2 : pts[0].size();
            const pareto::Point ref(m, 6.0);
            const double exact = pareto::hypervolume(pts, ref);

            const std::size_t samples = 20000;
            // Deterministic estimator seed derived from the inputs so
            // a failure replays exactly.
            std::uint64_t h = 0x4d43ull;
            for (const auto &p : pts)
                for (double v : p)
                    h = h * 1099511628211ull + std::uint64_t(v);
            Rng rng(h);
            std::size_t hits = 0;
            for (std::size_t s = 0; s < samples; ++s) {
                pareto::Point x(m);
                for (std::size_t d = 0; d < m; ++d)
                    x[d] = rng.uniform(0.0, 6.0);
                for (const auto &p : pts) {
                    bool dom = true;
                    for (std::size_t d = 0; d < m && dom; ++d)
                        dom = p[d] <= x[d];
                    if (dom) {
                        ++hits;
                        break;
                    }
                }
            }
            const double vol = std::pow(6.0, double(m));
            const double p_hat = double(hits) / double(samples);
            const double estimate = p_hat * vol;
            const double sigma =
                vol * std::sqrt(std::max(p_hat * (1.0 - p_hat),
                                         1.0 / double(samples)) /
                                double(samples));
            if (std::fabs(estimate - exact) > 6.0 * sigma + 1e-9) {
                std::ostringstream msg;
                msg << "exact " << prop::show(exact)
                    << " vs Monte-Carlo " << prop::show(estimate)
                    << " (sigma " << prop::show(sigma) << ")";
                return msg.str();
            }
            return std::nullopt;
        });
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropHypervolume, MonotoneUnderAddingPointsAndBoxBounded)
{
    prop::PointSetSpec spec;
    spec.minPoints = 1;
    spec.maxPoints = 16;
    spec.minDims = 2;
    spec.maxDims = 4;
    spec.value = prop::gridDouble(0, 5);
    const auto r = prop::forAll<std::vector<std::vector<double>>>(
        prop::Config::fromEnv(0x48560005, 1000), prop::pointSet(spec),
        showPoints,
        [](const std::vector<pareto::Point> &pts)
            -> std::optional<std::string> {
            const std::size_t m = pts[0].size();
            const pareto::Point ref(m, 6.0);
            const pareto::Point extra = pts.back();
            const std::vector<pareto::Point> base(pts.begin(),
                                                  pts.end() - 1);
            const double without = pareto::hypervolume(base, ref);
            const double with = pareto::hypervolume(pts, ref);
            double box = 1.0;
            for (std::size_t d = 0; d < m; ++d)
                box *= std::max(0.0, ref[d] - extra[d]);
            if (with + 1e-9 < without)
                return "hypervolume shrank when a point was added";
            if (with > without + box + 1e-9)
                return "added point contributed more than its own box";
            return std::nullopt;
        });
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropHypervolume, FiniteUnderPoisonedInputs)
{
    // NaN / +-Inf objectives are surrogate failures; they must never
    // produce a NaN, infinite or negative hypervolume. This is the
    // property that flushed out the WFG inf*0 bug (a -inf objective
    // against a zero-width box used to return NaN).
    prop::PointSetSpec spec;
    spec.maxPoints = 14;
    spec.minDims = 2;
    spec.maxDims = 4;
    spec.value = prop::anyDouble(0.2);
    const auto r = prop::forAll<std::vector<std::vector<double>>>(
        prop::Config::fromEnv(0x48560006, 1200), prop::pointSet(spec),
        showPoints,
        [](const std::vector<pareto::Point> &pts)
            -> std::optional<std::string> {
            const std::size_t m = pts.empty() ? 2 : pts[0].size();
            const pareto::Point ref(m, 6.0);
            for (double hv : {pareto::hypervolume(pts, ref),
                              pareto::hypervolumeWfg(pts, ref)}) {
                if (!std::isfinite(hv))
                    return "non-finite hypervolume";
                if (hv < 0.0)
                    return "negative hypervolume";
            }
            return std::nullopt;
        });
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropHypervolume, EmptyFrontIsZero)
{
    const pareto::Point ref = {1.0, 1.0};
    EXPECT_DOUBLE_EQ(pareto::hypervolume({}, ref), 0.0);
    EXPECT_DOUBLE_EQ(pareto::hypervolumeWfg({}, ref), 0.0);
}

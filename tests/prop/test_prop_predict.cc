/**
 * @file
 * Property tests for the fused, plan-backed inference pipeline: for
 * every surrogate family (HW-PR-NAS, scalable, BRP-NAS, GATES, LUT),
 * predictBatch() over a generated batch must be *bitwise* identical
 * to querying the same architectures one at a time, invariant to the
 * global thread count (1/2/4/8 lanes), and stable under plan reuse
 * (a warm plan recycled across differently sized batches changes
 * nothing).
 *
 * Bitwise identity holds because chunk boundaries depend only on the
 * batch size, every output element owns one ascending-k accumulation
 * chain, and the test encoder dims are multiples of the activation
 * kernel's 4-lane width (see DESIGN.md "Inference hot path").
 */

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/brpnas.h"
#include "baselines/gates.h"
#include "baselines/lut.h"
#include "common/prop.h"
#include "common/threadpool.h"
#include "core/batch_plan.h"
#include "core/hwprnas.h"
#include "core/scalable.h"
#include "core/surrogate.h"
#include "nasbench/dataset.h"
#include "prop_gens.h"

using namespace hwpr;

namespace
{

/** One fitted surrogate family under test. */
struct Family
{
    std::string name;
    std::unique_ptr<core::Surrogate> model;
};

const nasbench::SampledDataset &
propData()
{
    static const nasbench::SampledDataset data = [] {
        static nasbench::Oracle oracle(nasbench::DatasetId::Cifar10);
        Rng rng(97);
        return nasbench::SampledDataset::sample(
            {&nasbench::nasBench201(), &nasbench::fbnet()}, oracle,
            260, 180, 40, rng);
    }();
    return data;
}

/**
 * All five families, fitted once on the tiny dataset. Encoder dims
 * are multiples of 4 on purpose: the elementwise activation kernel
 * runs 4 doubles per lane, so rows of a (n x cols) panel only share
 * the single-row lane phase when cols % 4 == 0 — which is what makes
 * batched-vs-scalar identity exact rather than approximate.
 */
const std::vector<Family> &
families()
{
    static const std::vector<Family> fams = [] {
        core::EncoderConfig enc;
        enc.gcnHidden = 16;
        enc.lstmHidden = 16;
        enc.embedDim = 8;

        core::TrainConfig quick;
        quick.epochs = 4;
        quick.combinerEpochs = 2;
        quick.learningRate = 2e-3;

        const auto &data = propData();
        core::SurrogateDataset sd;
        sd.train = data.select(data.trainIdx);
        sd.val = data.select(data.valIdx);
        sd.platform = hw::PlatformId::EdgeGpu;
        ExecContext ctx = ExecContext::global().withSeed(5);

        core::PredictorTrainConfig pquick;
        pquick.epochs = 4;
        pquick.lr = 2e-3;

        std::vector<Family> out;

        core::HwPrNasConfig mc;
        mc.encoder = enc;
        auto hwpr = std::make_unique<core::HwPrNas>(
            mc, nasbench::DatasetId::Cifar10, 11);
        hwpr->setFitConfig(quick);
        hwpr->fit(sd, ctx);
        out.push_back({"hwprnas", std::move(hwpr)});

        core::ScalableConfig sc;
        sc.encoder = enc;
        auto scalable = std::make_unique<core::ScalableHwPrNas>(
            sc, nasbench::DatasetId::Cifar10, 12);
        scalable->setFitConfig(quick);
        scalable->fit(sd, ctx);
        out.push_back({"scalable", std::move(scalable)});

        auto brp = std::make_unique<baselines::BrpNas>(
            enc, nasbench::DatasetId::Cifar10, 13);
        brp->train(sd.train, sd.val, sd.platform, pquick);
        out.push_back({"brpnas", std::move(brp)});

        auto gates = std::make_unique<baselines::Gates>(
            enc, nasbench::DatasetId::Cifar10, 14);
        gates->train(sd.train, sd.val, sd.platform, pquick);
        out.push_back({"gates", std::move(gates)});

        auto lut = std::make_unique<baselines::LatencyLut>(
            nasbench::DatasetId::Cifar10, hw::PlatformId::EdgeGpu);
        lut->fit(sd, ctx);
        out.push_back({"lut", std::move(lut)});
        return out;
    }();
    return fams;
}

/**
 * A batch of architectures from either space. Sizes reach past the
 * 16-row chunk grain so multi-chunk plans are exercised; shrinking
 * drops one element at a time.
 */
prop::Gen<std::vector<nasbench::Architecture>>
batchGen()
{
    prop::Gen<std::vector<nasbench::Architecture>> g;
    const prop::Gen<nasbench::Architecture> arch = proptest::archGen();
    g.sample = [arch](Rng &rng) {
        const std::size_t n = std::size_t(rng.intIn(1, 40));
        std::vector<nasbench::Architecture> out;
        out.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            out.push_back(arch.sample(rng));
        return out;
    };
    g.shrink = [](const std::vector<nasbench::Architecture> &batch) {
        std::vector<std::vector<nasbench::Architecture>> out;
        if (batch.size() <= 1)
            return out;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            std::vector<nasbench::Architecture> cand;
            cand.reserve(batch.size() - 1);
            for (std::size_t j = 0; j < batch.size(); ++j)
                if (j != i)
                    cand.push_back(batch[j]);
            out.push_back(std::move(cand));
        }
        return out;
    };
    return g;
}

std::string
showBatch(const std::vector<nasbench::Architecture> &batch)
{
    std::ostringstream out;
    out << batch.size() << " archs: ";
    for (std::size_t i = 0; i < batch.size(); ++i)
        out << (i ? " " : "") << proptest::showArch(batch[i]);
    return out.str();
}

/** Bitwise comparison; returns a message on the first mismatch. */
std::optional<std::string>
expectSameBits(const std::string &family, const Matrix &a,
               const Matrix &b, const char *what)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return family + ": " + what + ": shape mismatch";
    for (std::size_t i = 0; i < a.raw().size(); ++i)
        if (a.raw()[i] != b.raw()[i]) {
            std::ostringstream msg;
            msg.precision(17);
            msg << family << ": " << what << ": element " << i
                << " differs: " << a.raw()[i] << " vs " << b.raw()[i];
            return msg.str();
        }
    return std::nullopt;
}

} // namespace

TEST(PropPredict, BatchedMatchesScalarBitwise)
{
    const auto r = prop::forAll<std::vector<nasbench::Architecture>>(
        prop::Config::fromEnv(0xF05ED001, 25), batchGen(), showBatch,
        [](const std::vector<nasbench::Architecture> &batch)
            -> std::optional<std::string> {
            for (const Family &fam : families()) {
                core::BatchPlan plan;
                const Matrix batched =
                    fam.model->predictBatch(batch, plan);
                Matrix singles(batched.rows(), batched.cols());
                core::BatchPlan one;
                for (std::size_t i = 0; i < batch.size(); ++i) {
                    const Matrix &row = fam.model->predictBatch(
                        std::span<const nasbench::Architecture>(
                            &batch[i], 1),
                        one);
                    for (std::size_t c = 0; c < batched.cols(); ++c)
                        singles(i, c) = row(0, c);
                }
                if (auto err = expectSameBits(
                        fam.name, batched, singles,
                        "batched vs one-at-a-time"))
                    return err;
            }
            return std::nullopt;
        });
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropPredict, PredictionsInvariantToThreadCount)
{
    const std::size_t before = ExecContext::global().threads();
    const auto r = prop::forAll<std::vector<nasbench::Architecture>>(
        prop::Config::fromEnv(0xF05ED002, 15), batchGen(), showBatch,
        [](const std::vector<nasbench::Architecture> &batch)
            -> std::optional<std::string> {
            for (const Family &fam : families()) {
                ExecContext::setGlobalThreads(1);
                core::BatchPlan plan;
                const Matrix serial =
                    fam.model->predictBatch(batch, plan);
                for (std::size_t threads : {2u, 4u, 8u}) {
                    ExecContext::setGlobalThreads(threads);
                    core::BatchPlan tplan;
                    const Matrix &parallel =
                        fam.model->predictBatch(batch, tplan);
                    if (auto err = expectSameBits(
                            fam.name, serial, parallel,
                            "thread-count variance"))
                        return err;
                }
            }
            return std::nullopt;
        });
    ExecContext::setGlobalThreads(before);
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropPredict, WarmPlanReuseIsStable)
{
    const auto r = prop::forAll<std::vector<nasbench::Architecture>>(
        prop::Config::fromEnv(0xF05ED003, 15), batchGen(), showBatch,
        [](const std::vector<nasbench::Architecture> &batch)
            -> std::optional<std::string> {
            for (const Family &fam : families()) {
                // Cold plan, then the same plan warmed by a pass over
                // a differently sized prefix, then the full batch
                // again: all three full-batch passes must agree.
                core::BatchPlan plan;
                const Matrix cold =
                    fam.model->predictBatch(batch, plan);
                const std::size_t half = (batch.size() + 1) / 2;
                fam.model->predictBatch(
                    std::span<const nasbench::Architecture>(
                        batch.data(), half),
                    plan);
                const Matrix &warm =
                    fam.model->predictBatch(batch, plan);
                if (auto err = expectSameBits(fam.name, cold, warm,
                                              "cold vs warm plan"))
                    return err;
            }
            return std::nullopt;
        });
    EXPECT_TRUE(r.ok) << r.message;
}

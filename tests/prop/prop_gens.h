/**
 * @file
 * Domain-specific generators for the property/differential test suite
 * (tests/prop/): architectures from the real search spaces and small
 * helpers shared by the oracle files. The generic harness
 * (generators, shrinking, forAll) lives in src/common/prop.h.
 */

#ifndef HWPR_TESTS_PROP_PROP_GENS_H
#define HWPR_TESTS_PROP_PROP_GENS_H

#include <sstream>
#include <string>
#include <vector>

#include "common/prop.h"
#include "nasbench/space.h"

namespace hwpr::proptest
{

/**
 * Architecture from either benchmark space. Shrinking zeroes genes
 * one at a time (genome length is fixed per space, so structural
 * shrinking is value simplification only).
 */
inline prop::Gen<nasbench::Architecture>
archGen()
{
    prop::Gen<nasbench::Architecture> g;
    g.sample = [](Rng &rng) {
        const auto &space = rng.bernoulli(0.5) ? nasbench::nasBench201()
                                               : nasbench::fbnet();
        return space.sample(rng);
    };
    g.shrink = [](const nasbench::Architecture &a) {
        std::vector<nasbench::Architecture> out;
        for (std::size_t i = 0; i < a.genome.size(); ++i) {
            if (a.genome[i] == 0)
                continue;
            nasbench::Architecture cand = a;
            cand.genome[i] = 0;
            out.push_back(std::move(cand));
        }
        return out;
    };
    return g;
}

inline std::string
showArch(const nasbench::Architecture &a)
{
    std::ostringstream out;
    out << (a.space == nasbench::SpaceId::NasBench201 ? "nb201"
                                                      : "fbnet")
        << ":";
    for (std::size_t i = 0; i < a.genome.size(); ++i)
        out << (i ? "," : "") << a.genome[i];
    return out.str();
}

/** Render a point set for counterexample output. */
inline std::string
showPoints(const std::vector<std::vector<double>> &pts)
{
    std::ostringstream out;
    out << pts.size() << " points: ";
    out << prop::show(pts);
    return out.str();
}

} // namespace hwpr::proptest

#endif // HWPR_TESTS_PROP_PROP_GENS_H

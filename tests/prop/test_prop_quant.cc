/**
 * @file
 * Property tests for the quantized rank-only fast path and the
 * flattened GBDT descent (see DESIGN.md "Quantized rank path"):
 *
 *  - quantize -> dequantize round-trips within half a quantization
 *    step per weight channel / activation row;
 *  - rankBatch() is bit-reproducible across thread counts 1/2/4/8 and
 *    across cold/warm encoding caches for every surrogate family;
 *  - int8 rankBatch() agrees with fp64 predictBatch() at Kendall
 *    tau >= 0.98 on seeded batches from each space — rank fidelity is
 *    the whole contract of the quantized path;
 *  - Gbdt::predictBatch() (flattened SoA, branch-free descent) is
 *    bitwise identical to the per-row node-walking oracle
 *    predictRow().
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/brpnas.h"
#include "baselines/gates.h"
#include "baselines/lut.h"
#include "common/prop.h"
#include "common/stats.h"
#include "common/threadpool.h"
#include "core/batch_plan.h"
#include "core/hwprnas.h"
#include "core/scalable.h"
#include "core/surrogate.h"
#include "gbdt/gbdt.h"
#include "nasbench/dataset.h"
#include "nn/layers.h"
#include "nn/quant.h"
#include "nn/scratch.h"
#include "prop_gens.h"

using namespace hwpr;

namespace
{

/** One fitted surrogate family under test. */
struct Family
{
    std::string name;
    std::unique_ptr<core::Surrogate> model;
};

const nasbench::SampledDataset &
propData()
{
    static const nasbench::SampledDataset data = [] {
        static nasbench::Oracle oracle(nasbench::DatasetId::Cifar10);
        Rng rng(97);
        return nasbench::SampledDataset::sample(
            {&nasbench::nasBench201(), &nasbench::fbnet()}, oracle,
            260, 180, 40, rng);
    }();
    return data;
}

/** All five families, fitted once (same protocol as test_prop_predict). */
const std::vector<Family> &
families()
{
    static const std::vector<Family> fams = [] {
        core::EncoderConfig enc;
        enc.gcnHidden = 16;
        enc.lstmHidden = 16;
        enc.embedDim = 8;

        core::TrainConfig quick;
        quick.epochs = 4;
        quick.combinerEpochs = 2;
        quick.learningRate = 2e-3;

        const auto &data = propData();
        core::SurrogateDataset sd;
        sd.train = data.select(data.trainIdx);
        sd.val = data.select(data.valIdx);
        sd.platform = hw::PlatformId::EdgeGpu;
        ExecContext ctx = ExecContext::global().withSeed(5);

        core::PredictorTrainConfig pquick;
        pquick.epochs = 4;
        pquick.lr = 2e-3;

        std::vector<Family> out;

        core::HwPrNasConfig mc;
        mc.encoder = enc;
        auto hwpr = std::make_unique<core::HwPrNas>(
            mc, nasbench::DatasetId::Cifar10, 11);
        hwpr->setFitConfig(quick);
        hwpr->fit(sd, ctx);
        out.push_back({"hwprnas", std::move(hwpr)});

        core::ScalableConfig sc;
        sc.encoder = enc;
        auto scalable = std::make_unique<core::ScalableHwPrNas>(
            sc, nasbench::DatasetId::Cifar10, 12);
        scalable->setFitConfig(quick);
        scalable->fit(sd, ctx);
        out.push_back({"scalable", std::move(scalable)});

        auto brp = std::make_unique<baselines::BrpNas>(
            enc, nasbench::DatasetId::Cifar10, 13);
        brp->train(sd.train, sd.val, sd.platform, pquick);
        out.push_back({"brpnas", std::move(brp)});

        auto gates = std::make_unique<baselines::Gates>(
            enc, nasbench::DatasetId::Cifar10, 14);
        gates->train(sd.train, sd.val, sd.platform, pquick);
        out.push_back({"gates", std::move(gates)});

        auto lut = std::make_unique<baselines::LatencyLut>(
            nasbench::DatasetId::Cifar10, hw::PlatformId::EdgeGpu);
        lut->fit(sd, ctx);
        out.push_back({"lut", std::move(lut)});
        return out;
    }();
    return fams;
}

/** Batch generator shared with test_prop_predict (spans chunk grain). */
prop::Gen<std::vector<nasbench::Architecture>>
batchGen()
{
    prop::Gen<std::vector<nasbench::Architecture>> g;
    const prop::Gen<nasbench::Architecture> arch = proptest::archGen();
    g.sample = [arch](Rng &rng) {
        const std::size_t n = std::size_t(rng.intIn(1, 40));
        std::vector<nasbench::Architecture> out;
        out.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            out.push_back(arch.sample(rng));
        return out;
    };
    g.shrink = [](const std::vector<nasbench::Architecture> &batch) {
        std::vector<std::vector<nasbench::Architecture>> out;
        if (batch.size() <= 1)
            return out;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            std::vector<nasbench::Architecture> cand;
            cand.reserve(batch.size() - 1);
            for (std::size_t j = 0; j < batch.size(); ++j)
                if (j != i)
                    cand.push_back(batch[j]);
            out.push_back(std::move(cand));
        }
        return out;
    };
    return g;
}

std::string
showBatch(const std::vector<nasbench::Architecture> &batch)
{
    std::ostringstream out;
    out << batch.size() << " archs: ";
    for (std::size_t i = 0; i < batch.size(); ++i)
        out << (i ? " " : "") << proptest::showArch(batch[i]);
    return out.str();
}

/** Bitwise comparison; returns a message on the first mismatch. */
std::optional<std::string>
expectSameBits(const std::string &family, const Matrix &a,
               const Matrix &b, const char *what)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return family + ": " + what + ": shape mismatch";
    for (std::size_t i = 0; i < a.raw().size(); ++i)
        if (a.raw()[i] != b.raw()[i]) {
            std::ostringstream msg;
            msg.precision(17);
            msg << family << ": " << what << ": element " << i
                << " differs: " << a.raw()[i] << " vs " << b.raw()[i];
            return msg.str();
        }
    return std::nullopt;
}

/** Seed generator for properties that build their own inputs. */
prop::Gen<int>
seedGen()
{
    prop::Gen<int> g;
    g.sample = [](Rng &rng) { return int(rng.intIn(0, 1 << 30)); };
    return g;
}

} // namespace

TEST(PropQuant, RoundTripWithinHalfStepPerChannel)
{
    const auto r = prop::forAll<int>(
        prop::Config::fromEnv(0xF05ED004, 60), seedGen(),
        [](int seed) -> std::optional<std::string> {
            Rng rng(std::uint64_t(seed) + 1);
            nn::MlpConfig cfg;
            cfg.inDim = std::size_t(rng.intIn(1, 48));
            cfg.hidden = {std::size_t(rng.intIn(1, 32))};
            if (rng.bernoulli(0.5))
                cfg.hidden.push_back(std::size_t(rng.intIn(1, 16)));
            cfg.outDim = std::size_t(rng.intIn(1, 4));
            const nn::Mlp mlp(cfg, rng);
            const nn::QuantizedMlp qmlp(mlp);

            // Weight channels: |W(k,j) - scale_j * q(j,k)| <= scale_j/2.
            for (std::size_t l = 0; l < qmlp.layers().size(); ++l) {
                const nn::QuantizedLinear &ql = qmlp.layers()[l];
                const Matrix &w = mlp.layers()[l].weight();
                for (std::size_t j = 0; j < ql.outDim(); ++j) {
                    const double scale = double(ql.weightScales()[j]);
                    for (std::size_t k = 0; k < ql.inDim(); ++k) {
                        const double deq =
                            scale *
                            double(ql.weights()[j * ql.inDim() + k]);
                        const double err = std::fabs(w(k, j) - deq);
                        if (err > scale / 2 + 1e-12) {
                            std::ostringstream msg;
                            msg.precision(17);
                            msg << "layer " << l << " channel " << j
                                << " weight " << k
                                << ": round-trip error " << err
                                << " > half step " << scale / 2;
                            return msg.str();
                        }
                    }
                }
            }

            // Activation rows: same bound at int16 resolution.
            std::vector<double> row(cfg.inDim);
            for (double &v : row)
                v = rng.normal() * std::exp(rng.normal());
            std::vector<std::int16_t> q(row.size());
            double scale = 0.0;
            nn::QuantizedLinear::quantizeActRow(row.data(), row.size(),
                                                q.data(), scale);
            for (std::size_t k = 0; k < row.size(); ++k) {
                const double err =
                    std::fabs(row[k] - scale * double(q[k]));
                if (err > scale / 2 + 1e-12) {
                    std::ostringstream msg;
                    msg.precision(17);
                    msg << "activation " << k << ": round-trip error "
                        << err << " > half step " << scale / 2;
                    return msg.str();
                }
            }
            return std::nullopt;
        });
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropQuant, RankBatchDeterministicAcrossThreadsAndCaches)
{
    const std::size_t before = ExecContext::global().threads();
    const auto r = prop::forAll<std::vector<nasbench::Architecture>>(
        prop::Config::fromEnv(0xF05ED005, 12), batchGen(), showBatch,
        [](const std::vector<nasbench::Architecture> &batch)
            -> std::optional<std::string> {
            for (const Family &fam : families()) {
                ExecContext::setGlobalThreads(1);
                core::BatchPlan plan;
                // First pass may freeze rank state and fill encoding
                // caches cold; the second runs fully warm. Cached rows
                // are bitwise-equal to fresh encodes, so the two must
                // agree exactly.
                const Matrix cold = fam.model->rankBatch(batch, plan);
                const Matrix &warm = fam.model->rankBatch(batch, plan);
                if (auto err = expectSameBits(
                        fam.name, cold, warm, "cold vs warm rank cache"))
                    return err;
                for (std::size_t threads : {2u, 4u, 8u}) {
                    ExecContext::setGlobalThreads(threads);
                    core::BatchPlan tplan;
                    const Matrix &parallel =
                        fam.model->rankBatch(batch, tplan);
                    if (auto err = expectSameBits(
                            fam.name, cold, parallel,
                            "rank-path thread-count variance"))
                        return err;
                }
            }
            return std::nullopt;
        });
    ExecContext::setGlobalThreads(before);
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropQuant, Int8RankAgreesWithFp64PerSpace)
{
    // Seeded pools per space: rank fidelity is the contract, so the
    // tau floor is checked on NB201 and FBNet separately (the spaces
    // stress the GCN and LSTM encoders differently).
    constexpr std::size_t kPool = 120;
    constexpr double kTauFloor = 0.98;
    Rng rng(0xF05ED006);
    std::vector<nasbench::Architecture> nb201, fbnet;
    for (std::size_t i = 0; i < kPool; ++i) {
        nb201.push_back(nasbench::nasBench201().sample(rng));
        fbnet.push_back(nasbench::fbnet().sample(rng));
    }

    for (const Family &fam : families()) {
        for (const auto *pool : {&nb201, &fbnet}) {
            core::BatchPlan fp64_plan, int8_plan;
            const Matrix &f = fam.model->predictBatch(*pool, fp64_plan);
            const Matrix &q = fam.model->rankBatch(*pool, int8_plan);
            ASSERT_EQ(f.rows(), q.rows()) << fam.name;
            ASSERT_EQ(f.cols(), q.cols()) << fam.name;
            std::vector<double> x(f.rows()), y(f.rows());
            for (std::size_t c = 0; c < f.cols(); ++c) {
                for (std::size_t r = 0; r < f.rows(); ++r) {
                    x[r] = f(r, c);
                    y[r] = q(r, c);
                }
                EXPECT_GE(kendallTau(x, y), kTauFloor)
                    << fam.name << " column " << c << " on "
                    << (pool == &nb201 ? "nb201" : "fbnet");
            }
        }
    }
}

TEST(PropQuant, GbdtFlatBatchMatchesRowOracle)
{
    const auto r = prop::forAll<int>(
        prop::Config::fromEnv(0xF05ED007, 20), seedGen(),
        [](int seed) -> std::optional<std::string> {
            Rng rng(std::uint64_t(seed) + 1);
            const std::size_t n = std::size_t(rng.intIn(8, 120));
            const std::size_t d = std::size_t(rng.intIn(2, 12));
            Matrix x(n, d);
            for (double &v : x.raw())
                v = rng.normal();
            std::vector<double> y(n);
            for (std::size_t i = 0; i < n; ++i)
                y[i] = x(i, 0) * 2.0 - x(i, d - 1) + rng.normal();

            gbdt::GbdtConfig cfg = rng.bernoulli(0.5)
                                       ? gbdt::xgboostConfig()
                                       : gbdt::lgboostConfig();
            cfg.rounds = std::size_t(rng.intIn(1, 25));
            gbdt::Gbdt model(cfg);
            model.fit(x, y, rng);

            const Matrix batched = model.predictBatch(x);
            for (std::size_t i = 0; i < n; ++i) {
                const double oracle = model.predictRow(x, i);
                if (batched(i, 0) != oracle) {
                    std::ostringstream msg;
                    msg.precision(17);
                    msg << "row " << i << ": flat " << batched(i, 0)
                        << " vs node-walk " << oracle;
                    return msg.str();
                }
            }
            return std::nullopt;
        });
    EXPECT_TRUE(r.ok) << r.message;
}

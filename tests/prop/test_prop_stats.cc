/**
 * @file
 * Differential property tests for the rank-correlation stack: the
 * O(n log n) Kendall tau-b vs a textbook O(n^2) pair-counting oracle,
 * Spearman vs an independent rank-then-Pearson formula, plus the
 * degenerate-input contract (n < 2, constant vectors, NaN inputs) and
 * algebraic invariants (symmetry, self-correlation, range).
 *
 * The NaN cases are regression tests: NaN breaks the strict weak
 * ordering of the internal sorts (undefined behaviour), and before the
 * fix kendallTau/spearman returned silently wrong finite correlations
 * on NaN-poisoned inputs instead of propagating NaN.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/prop.h"
#include "common/stats.h"

using namespace hwpr;

namespace
{

/** Paired samples; generated and shrunk pairwise. */
struct XY
{
    std::vector<double> x;
    std::vector<double> y;
};

/**
 * Pairs of tie-heavy vectors. Shrinking drops pairs (halves, then
 * single pairs) and zeroes individual values, keeping x and y aligned.
 */
prop::Gen<XY>
pairedGen(std::size_t max_len, int lo, int hi)
{
    prop::Gen<XY> g;
    g.sample = [max_len, lo, hi](Rng &rng) {
        const std::size_t n = rng.index(max_len + 1);
        XY v;
        v.x.resize(n);
        v.y.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            v.x[i] = double(rng.intIn(lo, hi));
            v.y[i] = double(rng.intIn(lo, hi));
        }
        return v;
    };
    g.shrink = [](const XY &v) {
        std::vector<XY> out;
        const std::size_t n = v.x.size();
        if (n > 0) {
            const std::size_t half = n / 2;
            out.push_back({{v.x.begin(), v.x.begin() + half},
                           {v.y.begin(), v.y.begin() + half}});
            for (std::size_t i = 0; i < n; ++i) {
                XY cand;
                for (std::size_t j = 0; j < n; ++j) {
                    if (j == i)
                        continue;
                    cand.x.push_back(v.x[j]);
                    cand.y.push_back(v.y[j]);
                }
                out.push_back(std::move(cand));
            }
        }
        for (std::size_t i = 0; i < n; ++i) {
            if (v.x[i] != 0.0) {
                XY cand = v;
                cand.x[i] = 0.0;
                out.push_back(std::move(cand));
            }
            if (v.y[i] != 0.0) {
                XY cand = v;
                cand.y[i] = 0.0;
                out.push_back(std::move(cand));
            }
        }
        return out;
    };
    return g;
}

std::string
showXY(const XY &v)
{
    return "x=" + prop::show(v.x) + " y=" + prop::show(v.y);
}

/** Textbook O(n^2) Kendall tau-b with explicit tie counting. */
double
kendallOracle(const std::vector<double> &x, const std::vector<double> &y)
{
    const std::size_t n = x.size();
    if (n < 2)
        return 0.0;
    long concordant = 0, discordant = 0, ties_x = 0, ties_y = 0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const double dx = x[i] - x[j];
            const double dy = y[i] - y[j];
            if (dx == 0.0 && dy == 0.0) {
                ++ties_x;
                ++ties_y;
            } else if (dx == 0.0) {
                ++ties_x;
            } else if (dy == 0.0) {
                ++ties_y;
            } else if (dx * dy > 0.0) {
                ++concordant;
            } else {
                ++discordant;
            }
        }
    }
    const double total = double(n) * double(n - 1) / 2.0;
    const double den = std::sqrt(total - double(ties_x)) *
                       std::sqrt(total - double(ties_y));
    if (den == 0.0)
        return 0.0;
    return double(concordant - discordant) / den;
}

/** Fractional rank by counting: 1 + #smaller + (#equal - 1) / 2. */
std::vector<double>
ranksByCounting(const std::vector<double> &v)
{
    std::vector<double> r(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
        std::size_t smaller = 0, equal = 0;
        for (double u : v) {
            if (u < v[i])
                ++smaller;
            else if (u == v[i])
                ++equal;
        }
        r[i] = 1.0 + double(smaller) + (double(equal) - 1.0) / 2.0;
    }
    return r;
}

/** Direct-formula Pearson, independent of stats.cc. */
double
pearsonOracle(const std::vector<double> &x, const std::vector<double> &y)
{
    const std::size_t n = x.size();
    if (n < 2)
        return 0.0;
    double mx = 0, my = 0;
    for (std::size_t i = 0; i < n; ++i) {
        mx += x[i];
        my += y[i];
    }
    mx /= double(n);
    my /= double(n);
    double sxy = 0, sxx = 0, syy = 0;
    for (std::size_t i = 0; i < n; ++i) {
        sxy += (x[i] - mx) * (y[i] - my);
        sxx += (x[i] - mx) * (x[i] - mx);
        syy += (y[i] - my) * (y[i] - my);
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

} // namespace

TEST(PropStats, KendallMatchesPairCountingOracle)
{
    const auto r = prop::forAll<XY>(
        prop::Config::fromEnv(0x57A70001, 1200), pairedGen(48, 0, 6),
        showXY,
        [](const XY &v) -> std::optional<std::string> {
            const double fast = kendallTau(v.x, v.y);
            const double slow = kendallOracle(v.x, v.y);
            if (std::fabs(fast - slow) > 1e-10) {
                std::ostringstream msg;
                msg << "kendallTau " << prop::show(fast)
                    << " != oracle " << prop::show(slow);
                return msg.str();
            }
            return std::nullopt;
        });
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropStats, SpearmanMatchesRankThenPearsonOracle)
{
    const auto r = prop::forAll<XY>(
        prop::Config::fromEnv(0x57A70002, 1200), pairedGen(40, 0, 6),
        showXY,
        [](const XY &v) -> std::optional<std::string> {
            const double fast = spearman(v.x, v.y);
            const double slow = pearsonOracle(ranksByCounting(v.x),
                                              ranksByCounting(v.y));
            if (std::fabs(fast - slow) > 1e-10) {
                std::ostringstream msg;
                msg << "spearman " << prop::show(fast) << " != oracle "
                    << prop::show(slow);
                return msg.str();
            }
            return std::nullopt;
        });
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropStats, AlgebraicInvariants)
{
    const auto r = prop::forAll<XY>(
        prop::Config::fromEnv(0x57A70003, 1000), pairedGen(32, 0, 5),
        showXY,
        [](const XY &v) -> std::optional<std::string> {
            const double eps = 1e-10;
            for (double t : {kendallTau(v.x, v.y), spearman(v.x, v.y),
                             pearson(v.x, v.y)})
                if (!(t >= -1.0 - eps && t <= 1.0 + eps))
                    return "correlation outside [-1, 1]";
            if (std::fabs(kendallTau(v.x, v.y) -
                          kendallTau(v.y, v.x)) > eps)
                return "kendallTau is not symmetric";
            if (std::fabs(spearman(v.x, v.y) - spearman(v.y, v.x)) >
                eps)
                return "spearman is not symmetric";
            // Self-correlation is 1 unless the vector is degenerate.
            bool constant = true;
            for (double x : v.x)
                constant = constant && x == v.x[0];
            if (v.x.size() >= 2 && !constant) {
                if (std::fabs(kendallTau(v.x, v.x) - 1.0) > eps)
                    return "kendallTau(x, x) != 1";
                if (std::fabs(spearman(v.x, v.x) - 1.0) > eps)
                    return "spearman(x, x) != 1";
            }
            return std::nullopt;
        });
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropStats, DegenerateInputsReturnZero)
{
    // The documented contract: n < 2 or a constant vector yields 0.
    EXPECT_DOUBLE_EQ(kendallTau({}, {}), 0.0);
    EXPECT_DOUBLE_EQ(kendallTau({1.0}, {2.0}), 0.0);
    EXPECT_DOUBLE_EQ(spearman({}, {}), 0.0);
    EXPECT_DOUBLE_EQ(spearman({1.0}, {2.0}), 0.0);
    EXPECT_DOUBLE_EQ(pearson({}, {}), 0.0);

    const auto r = prop::forAll<std::vector<double>>(
        prop::Config::fromEnv(0x57A70004, 400),
        prop::vectorOf(prop::gridDouble(-3, 3), 2, 24),
        [](const std::vector<double> &v) -> std::optional<std::string> {
            const std::vector<double> c(v.size(), 7.0);
            if (kendallTau(c, v) != 0.0 || kendallTau(v, c) != 0.0)
                return "kendallTau against a constant vector != 0";
            if (spearman(c, v) != 0.0 || spearman(v, c) != 0.0)
                return "spearman against a constant vector != 0";
            if (pearson(c, v) != 0.0 || pearson(v, c) != 0.0)
                return "pearson against a constant vector != 0";
            return std::nullopt;
        });
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropStats, NanInputsPropagateNan)
{
    // Regression: before the fix these returned silently wrong finite
    // values (NaN corrupts the sort order feeding the rank logic).
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const std::vector<double> x = {1.0, 2.0, nan, 4.0, 5.0};
    const std::vector<double> y = {1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_TRUE(std::isnan(kendallTau(x, y)));
    EXPECT_TRUE(std::isnan(kendallTau(y, x)));
    EXPECT_TRUE(std::isnan(spearman(x, y)));
    EXPECT_TRUE(std::isnan(spearman(y, x)));
    EXPECT_TRUE(std::isnan(pearson(x, y)));
    EXPECT_TRUE(std::isnan(pearson(y, x)));

    const auto r = prop::forAll<std::vector<double>>(
        prop::Config::fromEnv(0x57A70005, 400),
        prop::vectorOf(prop::anyDouble(0.3), 2, 20),
        [](const std::vector<double> &v) -> std::optional<std::string> {
            bool has_nan = false;
            for (double x : v)
                has_nan = has_nan || std::isnan(x);
            if (!has_nan)
                return std::nullopt;
            std::vector<double> idx(v.size());
            for (std::size_t i = 0; i < v.size(); ++i)
                idx[i] = double(i);
            if (!std::isnan(kendallTau(v, idx)))
                return "kendallTau swallowed a NaN input";
            if (!std::isnan(spearman(v, idx)))
                return "spearman swallowed a NaN input";
            if (!std::isnan(pearson(v, idx)))
                return "pearson swallowed a NaN input";
            return std::nullopt;
        });
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(PropStats, AverageRanksAreAPermutationAverage)
{
    const auto r = prop::forAll<std::vector<double>>(
        prop::Config::fromEnv(0x57A70006, 1000),
        prop::vectorOf(prop::gridDouble(0, 6), 0, 40),
        [](const std::vector<double> &v) -> std::optional<std::string> {
            const auto ranks = averageRanks(v);
            const auto oracle = ranksByCounting(v);
            if (ranks.size() != v.size())
                return "rank vector size mismatch";
            double sum = 0.0;
            for (std::size_t i = 0; i < ranks.size(); ++i) {
                if (std::fabs(ranks[i] - oracle[i]) > 1e-10)
                    return "rank disagrees with counting oracle";
                sum += ranks[i];
            }
            const double n = double(v.size());
            if (std::fabs(sum - n * (n + 1.0) / 2.0) > 1e-9)
                return "ranks do not sum to n(n+1)/2";
            return std::nullopt;
        });
    EXPECT_TRUE(r.ok) << r.message;
}

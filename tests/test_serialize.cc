/**
 * @file
 * Binary serialization primitive tests: round trips for every value
 * type, header validation, and corruption handling.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "common/serialize.h"

using namespace hwpr;

TEST(Serialize, ScalarRoundTrips)
{
    std::stringstream ss;
    BinaryWriter w(ss);
    w.writeU64(0);
    w.writeU64(~0ull);
    w.writeI64(-12345);
    w.writeDouble(3.14159265358979);
    w.writeDouble(-0.0);
    ASSERT_TRUE(w.ok());

    BinaryReader r(ss);
    EXPECT_EQ(r.readU64(), 0u);
    EXPECT_EQ(r.readU64(), ~0ull);
    EXPECT_EQ(r.readI64(), -12345);
    EXPECT_DOUBLE_EQ(r.readDouble(), 3.14159265358979);
    EXPECT_DOUBLE_EQ(r.readDouble(), -0.0);
    EXPECT_TRUE(r.ok());
}

TEST(Serialize, StringRoundTrips)
{
    std::stringstream ss;
    BinaryWriter w(ss);
    w.writeString("");
    w.writeString("hello, \"world\"\nwith newline");
    BinaryReader r(ss);
    EXPECT_EQ(r.readString(), "");
    EXPECT_EQ(r.readString(), "hello, \"world\"\nwith newline");
    EXPECT_TRUE(r.ok());
}

TEST(Serialize, VectorRoundTrips)
{
    Rng rng(1);
    std::vector<double> v(257);
    for (double &x : v)
        x = rng.normal();
    std::stringstream ss;
    BinaryWriter w(ss);
    w.writeDoubles(v);
    BinaryReader r(ss);
    EXPECT_EQ(r.readDoubles(), v);
}

TEST(Serialize, MatrixRoundTrips)
{
    Rng rng(2);
    Matrix m(7, 13);
    for (double &x : m.raw())
        x = rng.normal();
    std::stringstream ss;
    BinaryWriter w(ss);
    w.writeMatrix(m);
    BinaryReader r(ss);
    const Matrix back = r.readMatrix();
    ASSERT_EQ(back.rows(), 7u);
    ASSERT_EQ(back.cols(), 13u);
    for (std::size_t i = 0; i < m.size(); ++i)
        EXPECT_DOUBLE_EQ(back.raw()[i], m.raw()[i]);
}

TEST(Serialize, HeaderAcceptsMatchingKind)
{
    std::stringstream ss;
    BinaryWriter w(ss);
    writeHeader(w, "my-model", 3);
    BinaryReader r(ss);
    EXPECT_EQ(readHeader(r, "my-model"), 3u);
}

TEST(Serialize, HeaderRejectsWrongKind)
{
    std::stringstream ss;
    BinaryWriter w(ss);
    writeHeader(w, "model-a", 1);
    BinaryReader r(ss);
    EXPECT_EQ(readHeader(r, "model-b"), 0u);
}

TEST(Serialize, HeaderRejectsGarbage)
{
    std::stringstream ss("not a checkpoint");
    BinaryReader r(ss);
    EXPECT_EQ(readHeader(r, "model"), 0u);
}

TEST(Serialize, TruncatedReadSetsNotOk)
{
    std::stringstream ss;
    BinaryWriter w(ss);
    w.writeU64(42);
    BinaryReader r(ss);
    EXPECT_EQ(r.readU64(), 42u);
    EXPECT_TRUE(r.ok());
    r.readU64(); // nothing left
    EXPECT_FALSE(r.ok());
}

TEST(Serialize, AbsurdSizesRejected)
{
    // A corrupted length prefix must not trigger a giant allocation.
    std::stringstream ss;
    BinaryWriter w(ss);
    w.writeU64(~0ull); // bogus element count
    BinaryReader r(ss);
    const auto v = r.readDoubles();
    EXPECT_TRUE(v.empty());
    EXPECT_FALSE(r.ok());
}

TEST(Serialize, MatrixOverflowWrapRejected)
{
    // An adversarial header whose dimension product wraps in 64 bits
    // (2^33 x 2^33 == 2^66 == 0 mod 2^64) must be rejected, not
    // treated as a tiny allocation.
    std::stringstream ss;
    BinaryWriter w(ss);
    w.writeU64(1ull << 33);
    w.writeU64(1ull << 33);
    BinaryReader r(ss);
    const Matrix m = r.readMatrix();
    EXPECT_EQ(m.size(), 0u);
    EXPECT_FALSE(r.ok());
}

TEST(Serialize, MatrixModerateOverflowRejected)
{
    // Both dimensions individually under the element bound, but the
    // product is over it.
    std::stringstream ss;
    BinaryWriter w(ss);
    w.writeU64(1ull << 20);
    w.writeU64(1ull << 20);
    BinaryReader r(ss);
    const Matrix m = r.readMatrix();
    EXPECT_EQ(m.size(), 0u);
    EXPECT_FALSE(r.ok());
}

TEST(Serialize, AbsurdStringLengthRejected)
{
    std::stringstream ss;
    BinaryWriter w(ss);
    w.writeU64(1ull << 40); // bogus string length
    BinaryReader r(ss);
    EXPECT_TRUE(r.readString().empty());
    EXPECT_FALSE(r.ok());
}

TEST(Serialize, Crc32MatchesReferenceVector)
{
    // The standard CRC-32 (IEEE/zlib) check value.
    EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
    EXPECT_EQ(crc32("", 0), 0u);
    // Chaining via the seed equals one pass over the whole buffer.
    const std::uint32_t part = crc32("12345", 5);
    EXPECT_EQ(crc32("6789", 4, part), 0xcbf43926u);
}

/**
 * @file
 * Tests for the common substrate: matrix arithmetic, statistics
 * (including Kendall tau against a brute-force reference), RNG
 * determinism, and the ASCII/CSV renderers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "common/csv.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

using namespace hwpr;

namespace
{

/** O(n^2) reference implementation of Kendall tau-b. */
double
kendallTauBrute(const std::vector<double> &x,
                const std::vector<double> &y)
{
    const std::size_t n = x.size();
    long concordant = 0, discordant = 0, ties_x = 0, ties_y = 0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const double dx = x[i] - x[j];
            const double dy = y[i] - y[j];
            if (dx == 0.0 && dy == 0.0) {
                ++ties_x;
                ++ties_y;
            } else if (dx == 0.0) {
                ++ties_x;
            } else if (dy == 0.0) {
                ++ties_y;
            } else if (dx * dy > 0.0) {
                ++concordant;
            } else {
                ++discordant;
            }
        }
    }
    const double total = double(n) * double(n - 1) / 2.0;
    const double den = std::sqrt(total - double(ties_x)) *
                       std::sqrt(total - double(ties_y));
    if (den == 0.0)
        return 0.0;
    return double(concordant - discordant) / den;
}

} // namespace

TEST(Matrix, ConstructAndIndex)
{
    Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
    m(0, 1) = -2.0;
    EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, Arithmetic)
{
    Matrix a(2, 2, {1, 2, 3, 4});
    Matrix b(2, 2, {5, 6, 7, 8});
    const Matrix sum = a + b;
    EXPECT_DOUBLE_EQ(sum(0, 0), 6.0);
    EXPECT_DOUBLE_EQ(sum(1, 1), 12.0);
    const Matrix diff = b - a;
    EXPECT_DOUBLE_EQ(diff(0, 1), 4.0);
    const Matrix had = a.hadamard(b);
    EXPECT_DOUBLE_EQ(had(1, 0), 21.0);
    const Matrix scaled = a * 2.0;
    EXPECT_DOUBLE_EQ(scaled(1, 1), 8.0);
}

TEST(Matrix, Matmul)
{
    Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
    Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
    const Matrix c = a.matmul(b);
    EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, TransposedVariantsMatchExplicitTranspose)
{
    Rng rng(1);
    Matrix a(4, 3);
    Matrix b(4, 5);
    for (double &v : a.raw())
        v = rng.normal();
    for (double &v : b.raw())
        v = rng.normal();

    const Matrix t1 = a.transposedMatmul(b);          // a^T * b
    const Matrix t1_ref = a.transposed().matmul(b);
    ASSERT_EQ(t1.rows(), t1_ref.rows());
    for (std::size_t i = 0; i < t1.raw().size(); ++i)
        EXPECT_NEAR(t1.raw()[i], t1_ref.raw()[i], 1e-12);

    Matrix c(5, 3);
    for (double &v : c.raw())
        v = rng.normal();
    const Matrix t2 = a.matmulTransposed(c);          // a * c^T
    const Matrix t2_ref = a.matmul(c.transposed());
    for (std::size_t i = 0; i < t2.raw().size(); ++i)
        EXPECT_NEAR(t2.raw()[i], t2_ref.raw()[i], 1e-12);
}

TEST(Matrix, ConcatAndSlice)
{
    Matrix a(2, 2, {1, 2, 3, 4});
    Matrix b(2, 1, {9, 10});
    const Matrix h = Matrix::hconcat(a, b);
    EXPECT_EQ(h.cols(), 3u);
    EXPECT_DOUBLE_EQ(h(0, 2), 9.0);
    const Matrix v = Matrix::vconcat(a, a);
    EXPECT_EQ(v.rows(), 4u);
    EXPECT_DOUBLE_EQ(v(3, 1), 4.0);
    const Matrix s = v.rowSlice(1, 3);
    EXPECT_EQ(s.rows(), 2u);
    EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
}

TEST(Matrix, RowBroadcastAndColumnSums)
{
    Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
    Matrix row(1, 3, {10, 20, 30});
    const Matrix b = a.addRowBroadcast(row);
    EXPECT_DOUBLE_EQ(b(1, 2), 36.0);
    const Matrix sums = a.columnSums();
    EXPECT_DOUBLE_EQ(sums(0, 0), 5.0);
    EXPECT_DOUBLE_EQ(sums(0, 2), 9.0);
}

TEST(Matrix, XavierBounds)
{
    Rng rng(3);
    const Matrix m = Matrix::xavier(20, 30, rng);
    const double bound = std::sqrt(6.0 / 50.0);
    for (double v : m.raw()) {
        EXPECT_LE(v, bound);
        EXPECT_GE(v, -bound);
    }
}

TEST(Stats, MeanStdErr)
{
    const std::vector<double> v = {1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(mean(v), 3.0);
    EXPECT_NEAR(stddev(v), std::sqrt(2.5), 1e-12);
    EXPECT_NEAR(stdError(v), std::sqrt(2.5 / 5.0), 1e-12);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, PearsonPerfect)
{
    const std::vector<double> x = {1, 2, 3, 4};
    const std::vector<double> y = {2, 4, 6, 8};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
    const std::vector<double> z = {8, 6, 4, 2};
    EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Stats, SpearmanMonotone)
{
    // Spearman is 1 for any strictly increasing transform.
    const std::vector<double> x = {1, 2, 3, 4, 5};
    const std::vector<double> y = {1, 8, 27, 64, 125};
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Stats, KendallKnownValues)
{
    EXPECT_NEAR(kendallTau({1, 2, 3}, {1, 2, 3}), 1.0, 1e-12);
    EXPECT_NEAR(kendallTau({1, 2, 3}, {3, 2, 1}), -1.0, 1e-12);
    // One discordant pair of three: tau = (2 - 1) / 3.
    EXPECT_NEAR(kendallTau({1, 2, 3}, {1, 3, 2}), 1.0 / 3.0, 1e-12);
}

class KendallRandomTest : public ::testing::TestWithParam<int>
{
};

TEST_P(KendallRandomTest, MatchesBruteForce)
{
    Rng rng(GetParam());
    const std::size_t n = 60;
    std::vector<double> x(n), y(n);
    for (std::size_t i = 0; i < n; ++i) {
        // Quantized values to exercise tie handling.
        x[i] = std::floor(rng.uniform(0, 8));
        y[i] = std::floor(rng.uniform(0, 8));
    }
    EXPECT_NEAR(kendallTau(x, y), kendallTauBrute(x, y), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KendallRandomTest,
                         ::testing::Range(0, 12));

TEST(Stats, Rmse)
{
    EXPECT_DOUBLE_EQ(rmse({1, 2}, {1, 2}), 0.0);
    EXPECT_NEAR(rmse({0, 0}, {3, 4}), std::sqrt(12.5), 1e-12);
}

TEST(Stats, AverageRanksWithTies)
{
    const auto r = averageRanks({10, 20, 20, 30});
    EXPECT_DOUBLE_EQ(r[0], 1.0);
    EXPECT_DOUBLE_EQ(r[1], 2.5);
    EXPECT_DOUBLE_EQ(r[2], 2.5);
    EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Rng, Deterministic)
{
    Rng a(99), b(99);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, SampleIndicesDistinct)
{
    Rng rng(5);
    const auto idx = rng.sampleIndices(100, 40);
    EXPECT_EQ(idx.size(), 40u);
    std::vector<bool> seen(100, false);
    for (std::size_t i : idx) {
        EXPECT_LT(i, 100u);
        EXPECT_FALSE(seen[i]);
        seen[i] = true;
    }
}

TEST(Rng, IntInRange)
{
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        const int v = rng.intIn(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
}

TEST(Table, RendersAllCells)
{
    AsciiTable t({"a", "bb"});
    t.addRow({"1", "2"});
    t.addRow({"333", "4"});
    const std::string s = t.render();
    EXPECT_NE(s.find("333"), std::string::npos);
    EXPECT_NE(s.find("bb"), std::string::npos);
}

TEST(Table, BarChartScalesToMax)
{
    AsciiBarChart chart("title", 10);
    chart.addBar("x", 1.0);
    chart.addBar("y", 2.0);
    const std::string s = chart.render();
    EXPECT_NE(s.find("##########"), std::string::npos);
    EXPECT_NE(s.find("title"), std::string::npos);
}

TEST(Table, ScatterShowsLegend)
{
    AsciiScatter sc("t", "x", "y");
    sc.addSeries("s1", {0.0, 1.0}, {0.0, 1.0});
    const std::string s = sc.render();
    EXPECT_NE(s.find("'*' = s1"), std::string::npos);
}

TEST(Csv, WriteFailureFlipsOkAndDropsRows)
{
    // /dev/full opens fine but every flushed write fails with ENOSPC
    // — exactly the silent-full-disk scenario. Before the fix ok_
    // only tracked open(), so all rows were dropped with ok() still
    // true.
    if (!std::filesystem::exists("/dev/full"))
        GTEST_SKIP() << "/dev/full not available on this platform";
    CsvWriter w("/dev/full", {"a", "b"});
    EXPECT_FALSE(w.ok());
    w.addRow({"1", "2"}); // must be a safe no-op
    EXPECT_FALSE(w.ok());
}

TEST(Csv, OkStaysTrueOnHealthyStream)
{
    const std::string path = "/tmp/hwpr_test_ok.csv";
    CsvWriter w(path, {"a"});
    for (int i = 0; i < 100; ++i)
        w.addRow({std::to_string(i)});
    EXPECT_TRUE(w.ok());
    std::filesystem::remove(path);
}

TEST(Csv, WritesQuotedCells)
{
    const std::string path = "/tmp/hwpr_test.csv";
    {
        CsvWriter w(path, {"a", "b"});
        ASSERT_TRUE(w.ok());
        w.addRow({"x,y", "plain"});
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "\"x,y\",plain");
}

/**
 * @file
 * Model/optimizer tests: layers learn simple functions, LSTM and GCN
 * encoders backpropagate correctly and are expressive enough to
 * separate their inputs, optimizers implement their update rules.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/gcn.h"
#include "nn/gradcheck.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/lstm.h"
#include "nn/optim.h"

using namespace hwpr;
using namespace hwpr::nn;

TEST(Linear, ForwardShapeAndValue)
{
    Rng rng(1);
    Linear layer(3, 2, rng);
    // Overwrite weights for a deterministic check.
    auto params = layer.params();
    params[0].valueMut() = Matrix(3, 2, {1, 0, 0, 1, 1, 1});
    params[1].valueMut() = Matrix(1, 2, {10, 20});
    Tensor x = Tensor::constant(Matrix(1, 3, {1, 2, 3}));
    const Tensor y = layer.forward(x);
    EXPECT_DOUBLE_EQ(y.value()(0, 0), 1 + 3 + 10);
    EXPECT_DOUBLE_EQ(y.value()(0, 1), 2 + 3 + 20);
}

TEST(Mlp, LearnsLinearFunction)
{
    Rng rng(2);
    MlpConfig cfg;
    cfg.inDim = 2;
    cfg.hidden = {16};
    cfg.outDim = 1;
    Mlp mlp(cfg, rng);

    Adam opt(mlp.params(), 0.02);
    Matrix x(64, 2);
    std::vector<double> y(64);
    Rng data_rng(3);
    for (std::size_t i = 0; i < 64; ++i) {
        x(i, 0) = data_rng.uniform(-1, 1);
        x(i, 1) = data_rng.uniform(-1, 1);
        y[i] = 2.0 * x(i, 0) - 0.5 * x(i, 1);
    }
    Tensor xt = Tensor::constant(x);
    double final_loss = 1e300;
    for (int iter = 0; iter < 300; ++iter) {
        opt.zeroGrad();
        Tensor loss = mseLoss(mlp.forward(xt), y);
        backward(loss);
        opt.step();
        final_loss = loss.value()(0, 0);
    }
    EXPECT_LT(final_loss, 1e-3);
}

TEST(Mlp, LearnsXor)
{
    // Nonlinear separability: requires a working hidden layer.
    Rng rng(4);
    MlpConfig cfg;
    cfg.inDim = 2;
    cfg.hidden = {8};
    cfg.outDim = 1;
    cfg.activation = Activation::Tanh;
    Mlp mlp(cfg, rng);
    Adam opt(mlp.params(), 0.05);

    Tensor x = Tensor::constant(Matrix(4, 2, {0, 0, 0, 1, 1, 0, 1, 1}));
    const std::vector<double> y = {0, 1, 1, 0};
    double final_loss = 1e300;
    for (int iter = 0; iter < 800; ++iter) {
        opt.zeroGrad();
        Tensor loss = mseLoss(mlp.forward(x), y);
        backward(loss);
        opt.step();
        final_loss = loss.value()(0, 0);
    }
    EXPECT_LT(final_loss, 1e-2);
}

TEST(Mlp, ParamCountMatchesArchitecture)
{
    Rng rng(5);
    MlpConfig cfg;
    cfg.inDim = 10;
    cfg.hidden = {20, 5};
    cfg.outDim = 1;
    Mlp mlp(cfg, rng);
    // (10*20 + 20) + (20*5 + 5) + (5*1 + 1) = 220 + 105 + 6.
    EXPECT_EQ(mlp.numParams(), 331u);
}

TEST(Lstm, ForwardShape)
{
    Rng rng(6);
    LstmConfig cfg;
    cfg.vocab = 10;
    cfg.embedDim = 8;
    cfg.hidden = 12;
    cfg.layers = 2;
    LstmEncoder lstm(cfg, rng);
    const Tensor out = lstm.forward({{1, 2, 3}, {4, 5, 6}});
    EXPECT_EQ(out.rows(), 2u);
    EXPECT_EQ(out.cols(), 12u);
}

TEST(Lstm, GradCheckThroughTime)
{
    Rng rng(7);
    LstmConfig cfg;
    cfg.vocab = 5;
    cfg.embedDim = 4;
    cfg.hidden = 6;
    cfg.layers = 2;
    LstmEncoder lstm(cfg, rng);
    const std::vector<std::vector<std::size_t>> seqs = {{0, 1, 2, 3},
                                                        {4, 3, 2, 1}};
    for (Tensor p : lstm.params()) {
        const double err = gradCheck(
            [&] { return meanAll(lstm.forward(seqs)); }, p, 1e-5);
        EXPECT_LT(err, 1e-5) << p.name();
    }
}

TEST(Lstm, DistinguishesSequenceOrder)
{
    Rng rng(8);
    LstmConfig cfg;
    cfg.vocab = 4;
    cfg.embedDim = 6;
    cfg.hidden = 8;
    cfg.layers = 1;
    LstmEncoder lstm(cfg, rng);
    const Tensor out = lstm.forward({{0, 1, 2}, {2, 1, 0}});
    double diff = 0.0;
    for (std::size_t j = 0; j < out.cols(); ++j)
        diff += std::abs(out.value()(0, j) - out.value()(1, j));
    EXPECT_GT(diff, 1e-6);
}

TEST(Lstm, LearnsTokenCountTask)
{
    // Predict the number of token-1 occurrences in a length-6
    // sequence: requires the recurrent state to accumulate.
    Rng rng(9);
    LstmConfig cfg;
    cfg.vocab = 3;
    cfg.embedDim = 6;
    cfg.hidden = 10;
    cfg.layers = 1;
    LstmEncoder lstm(cfg, rng);
    Linear readout(10, 1, rng);

    std::vector<Tensor> params = lstm.params();
    for (const auto &p : readout.params())
        params.push_back(p);
    Adam opt(params, 0.02);

    Rng data_rng(10);
    std::vector<std::vector<std::size_t>> seqs(32);
    std::vector<double> counts(32);
    for (std::size_t i = 0; i < 32; ++i) {
        seqs[i].resize(6);
        for (auto &t : seqs[i]) {
            t = data_rng.index(3);
            if (t == 1)
                counts[i] += 1.0;
        }
        counts[i] = counts[i] > 0 ? counts[i] : 0.0;
    }
    double final_loss = 1e300;
    for (int iter = 0; iter < 250; ++iter) {
        opt.zeroGrad();
        Tensor loss =
            mseLoss(readout.forward(lstm.forward(seqs)), counts);
        backward(loss);
        opt.step();
        final_loss = loss.value()(0, 0);
    }
    EXPECT_LT(final_loss, 0.1);
}

namespace
{

GraphInput
makeGraph(const std::vector<int> &cats, std::size_t feat_dim,
          const std::vector<std::pair<int, int>> &edges)
{
    GraphInput g;
    const std::size_t v = cats.size();
    Matrix raw(v, v);
    for (auto [a, b] : edges) {
        raw(a, b) = 1.0;
        raw(b, a) = 1.0;
    }
    g.adjacency = GcnEncoder::normalizeAdjacency(raw);
    g.features = Matrix(v, feat_dim);
    for (std::size_t i = 0; i < v; ++i)
        g.features(i, std::size_t(cats[i])) = 1.0;
    g.globalNode = v - 1;
    return g;
}

} // namespace

TEST(Gcn, NormalizedAdjacencyRowsBounded)
{
    Matrix raw(3, 3);
    raw(0, 1) = raw(1, 0) = 1.0;
    const Matrix a = GcnEncoder::normalizeAdjacency(raw);
    // Symmetric, nonnegative, spectral norm <= 1 for this form; check
    // symmetry and self loops.
    EXPECT_GT(a(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(a(0, 1), a(1, 0));
    EXPECT_DOUBLE_EQ(a(0, 2), 0.0);
}

TEST(Gcn, ForwardShape)
{
    Rng rng(11);
    GcnConfig cfg;
    cfg.featDim = 4;
    cfg.hidden = 7;
    cfg.layers = 2;
    GcnEncoder gcn(cfg, rng);
    const auto g1 = makeGraph({0, 1, 2}, 4, {{0, 1}, {1, 2}});
    const auto g2 = makeGraph({0, 1, 1, 2}, 4, {{0, 1}, {2, 3}});
    const Tensor out = gcn.forward({g1, g2});
    EXPECT_EQ(out.rows(), 2u);
    EXPECT_EQ(out.cols(), 7u);
}

TEST(Gcn, GradCheck)
{
    Rng rng(12);
    GcnConfig cfg;
    cfg.featDim = 3;
    cfg.hidden = 5;
    cfg.layers = 2;
    GcnEncoder gcn(cfg, rng);
    const auto g1 = makeGraph({0, 1, 2}, 3, {{0, 1}, {1, 2}});
    const auto g2 = makeGraph({2, 1, 0}, 3, {{0, 2}});
    for (Tensor p : gcn.params()) {
        const double err = gradCheck(
            [&] { return meanAll(gcn.forward({g1, g2})); }, p, 1e-5);
        EXPECT_LT(err, 2e-5) << p.name();
    }
}

TEST(Gcn, DistinguishesTopology)
{
    // Same node multiset, different wiring.
    Rng rng(13);
    GcnConfig cfg;
    cfg.featDim = 3;
    cfg.hidden = 8;
    cfg.layers = 2;
    GcnEncoder gcn(cfg, rng);
    const auto chain =
        makeGraph({0, 1, 1, 2}, 3, {{0, 1}, {1, 2}, {2, 3}});
    const auto star =
        makeGraph({0, 1, 1, 2}, 3, {{0, 1}, {0, 2}, {0, 3}});
    const Tensor out = gcn.forward({chain, star});
    double diff = 0.0;
    for (std::size_t j = 0; j < out.cols(); ++j)
        diff += std::abs(out.value()(0, j) - out.value()(1, j));
    EXPECT_GT(diff, 1e-6);
}

TEST(Gcn, MeanPoolReadoutWorks)
{
    Rng rng(14);
    GcnConfig cfg;
    cfg.featDim = 3;
    cfg.hidden = 4;
    cfg.layers = 1;
    cfg.useGlobalNode = false;
    GcnEncoder gcn(cfg, rng);
    const auto g = makeGraph({0, 1, 2}, 3, {{0, 1}});
    const Tensor out = gcn.forward({g});
    EXPECT_EQ(out.rows(), 1u);
    EXPECT_EQ(out.cols(), 4u);
}

TEST(Optim, SgdStepMatchesFormula)
{
    Tensor p = Tensor::param(Matrix(1, 1, {1.0}), "p");
    p.gradMut()(0, 0) = 0.5;
    Sgd opt({p}, 0.1);
    opt.step();
    EXPECT_NEAR(p.value()(0, 0), 1.0 - 0.1 * 0.5, 1e-12);
}

TEST(Optim, SgdMomentumAccumulates)
{
    Tensor p = Tensor::param(Matrix(1, 1, {0.0}), "p");
    Sgd opt({p}, 1.0, 0.9);
    p.gradMut()(0, 0) = 1.0;
    opt.step(); // v = 1, p = -1
    p.gradMut()(0, 0) = 1.0;
    opt.step(); // v = 1.9, p = -2.9
    EXPECT_NEAR(p.value()(0, 0), -2.9, 1e-12);
}

TEST(Optim, AdamFirstStepIsLrSized)
{
    Tensor p = Tensor::param(Matrix(1, 1, {0.0}), "p");
    Adam opt({p}, 0.01);
    p.gradMut()(0, 0) = 123.0;
    opt.step();
    // Bias-corrected Adam moves ~lr on the first step regardless of
    // gradient scale.
    EXPECT_NEAR(p.value()(0, 0), -0.01, 1e-6);
}

TEST(Optim, AdamWDecaysWithoutGradient)
{
    Tensor p = Tensor::param(Matrix(1, 1, {1.0}), "p");
    AdamW opt({p}, 0.1, 0.5);
    p.zeroGrad();
    opt.step();
    // Zero gradient: only the decoupled decay applies.
    EXPECT_NEAR(p.value()(0, 0), 1.0 * (1.0 - 0.1 * 0.5), 1e-12);
}

TEST(Optim, CosineScheduleEndpoints)
{
    CosineAnnealing sched(1.0, 100, 0.1);
    EXPECT_NEAR(sched.at(0), 1.0, 1e-12);
    EXPECT_NEAR(sched.at(100), 0.1, 1e-12);
    EXPECT_NEAR(sched.at(50), 0.55, 1e-12);
    // Monotone decreasing.
    for (std::size_t t = 1; t <= 100; ++t)
        EXPECT_LE(sched.at(t), sched.at(t - 1) + 1e-12);
}

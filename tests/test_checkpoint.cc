/**
 * @file
 * Crash-safety tests for the checkpoint layer: atomic save semantics,
 * CRC-verified loads, save/load round trips for all five surrogate
 * families through core::loadSurrogate, generation-level MOEA
 * checkpoint/resume bit-identity, and fault injection (truncation,
 * bit flips, wrong kinds) proving corrupted artifacts are rejected
 * cleanly instead of crashing or silently mis-loading.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "baselines/brpnas.h"
#include "baselines/gates.h"
#include "baselines/lut.h"
#include "baselines/registry.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/threadpool.h"
#include "core/hwprnas.h"
#include "core/scalable.h"
#include "core/surrogate.h"
#include "pareto/pareto.h"
#include "search/domain.h"
#include "search/moea.h"

using namespace hwpr;

namespace
{

std::string
tempPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    return bytes;
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), std::streamsize(bytes.size()));
}

// -------------------------------------------------------------------
// Shared tiny training setup (mirrors test_surrogate_iface).
// -------------------------------------------------------------------

const nasbench::SampledDataset &
tinyData()
{
    static const nasbench::SampledDataset data = [] {
        static nasbench::Oracle oracle(nasbench::DatasetId::Cifar10);
        Rng rng(88);
        return nasbench::SampledDataset::sample(
            {&nasbench::nasBench201(), &nasbench::fbnet()}, oracle,
            260, 180, 40, rng);
    }();
    return data;
}

core::SurrogateDataset
tinySurrogateData()
{
    const auto &data = tinyData();
    core::SurrogateDataset d;
    d.train = data.select(data.trainIdx);
    d.val = data.select(data.valIdx);
    d.platform = hw::PlatformId::EdgeGpu;
    return d;
}

std::vector<nasbench::Architecture>
testArchs()
{
    const auto &data = tinyData();
    std::vector<nasbench::Architecture> out;
    for (const auto *r : data.select(data.testIdx))
        out.push_back(r->arch);
    return out;
}

core::EncoderConfig
tinyEncoder()
{
    core::EncoderConfig cfg;
    cfg.gcnHidden = 12;
    cfg.lstmHidden = 12;
    cfg.embedDim = 8;
    return cfg;
}

core::PredictorTrainConfig
quickPredictorFit()
{
    core::PredictorTrainConfig cfg;
    cfg.epochs = 3;
    cfg.patience = 3;
    return cfg;
}

/**
 * Loaded-model predictions must match the original bit for bit: a
 * checkpoint stores exact doubles, so any drift means the format
 * dropped or transformed state.
 */
void
expectObjectivesIdentical(const core::Surrogate &a,
                          const core::Surrogate &b,
                          const std::vector<nasbench::Architecture> &
                              archs)
{
    const Matrix oa = a.objectivesBatch(archs);
    const Matrix ob = b.objectivesBatch(archs);
    ASSERT_EQ(oa.rows(), ob.rows());
    ASSERT_EQ(oa.cols(), ob.cols());
    for (std::size_t i = 0; i < oa.raw().size(); ++i)
        EXPECT_DOUBLE_EQ(oa.raw()[i], ob.raw()[i]);
}

// -------------------------------------------------------------------
// Deterministic, instant evaluator for the search tests.
// -------------------------------------------------------------------

class HashEvaluator : public search::Evaluator
{
  public:
    explicit HashEvaluator(double cost_per_eval = 0.0)
        : cost_(cost_per_eval)
    {}

    search::EvalKind kind() const override
    {
        return search::EvalKind::ObjectiveVector;
    }
    std::string name() const override { return "hash-eval"; }
    std::size_t numObjectives() const override { return 2; }

    std::vector<pareto::Point>
    evaluate(const std::vector<nasbench::Architecture> &archs) override
    {
        std::vector<pareto::Point> out;
        out.reserve(archs.size());
        for (const auto &a : archs) {
            const std::uint64_t h = a.hash(17);
            out.push_back({double(h % 997) * 0.1,
                           double((h >> 13) % 991) * 0.1});
        }
        return out;
    }

    double simulatedCostSeconds(std::size_t batch) const override
    {
        return cost_ * double(batch);
    }

  private:
    double cost_;
};

search::MoeaConfig
smallMoea(std::size_t generations)
{
    search::MoeaConfig cfg;
    cfg.populationSize = 16;
    cfg.maxGenerations = generations;
    cfg.simulatedBudgetSeconds = 0.0;
    return cfg;
}

} // namespace

// -------------------------------------------------------------------
// Rng engine state
// -------------------------------------------------------------------

TEST(RngState, SaveRestoreReproducesSequence)
{
    Rng rng(123);
    for (int i = 0; i < 37; ++i)
        rng.uniform();
    const std::string state = rng.saveState();
    std::vector<double> expected;
    for (int i = 0; i < 20; ++i)
        expected.push_back(rng.uniform());

    Rng other(999);
    ASSERT_TRUE(other.restoreState(state));
    for (int i = 0; i < 20; ++i)
        EXPECT_DOUBLE_EQ(other.uniform(), expected[std::size_t(i)]);
}

TEST(RngState, RestoreRejectsGarbageAndKeepsEngine)
{
    Rng rng(7);
    const double next = Rng(7).uniform();
    EXPECT_FALSE(rng.restoreState("not an engine state"));
    EXPECT_FALSE(rng.restoreState(""));
    // A failed restore must leave the engine untouched.
    EXPECT_DOUBLE_EQ(rng.uniform(), next);
}

// -------------------------------------------------------------------
// atomicSave / readVerified
// -------------------------------------------------------------------

TEST(AtomicSave, RoundTripAndNoTempLeftBehind)
{
    const std::string path = tempPath("hwpr_atomic_roundtrip.bin");
    ASSERT_TRUE(atomicSave(path, [](BinaryWriter &w) {
        writeHeader(w, "unit-test", 1);
        w.writeU64(42);
        w.writeDouble(2.5);
    }));
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

    std::string body;
    ASSERT_TRUE(readVerified(path, body));
    std::istringstream in(body, std::ios::binary);
    BinaryReader r(in);
    EXPECT_EQ(readHeader(r, "unit-test"), 1u);
    EXPECT_EQ(r.readU64(), 42u);
    EXPECT_DOUBLE_EQ(r.readDouble(), 2.5);
    EXPECT_EQ(checkpointKind(path), "unit-test");
    std::remove(path.c_str());
}

TEST(AtomicSave, OverwriteReplacesPreviousCheckpoint)
{
    const std::string path = tempPath("hwpr_atomic_overwrite.bin");
    ASSERT_TRUE(atomicSave(path, [](BinaryWriter &w) {
        writeHeader(w, "first", 1);
    }));
    ASSERT_TRUE(atomicSave(path, [](BinaryWriter &w) {
        writeHeader(w, "second", 1);
    }));
    EXPECT_EQ(checkpointKind(path), "second");
    std::remove(path.c_str());
}

TEST(ReadVerified, MissingFileRejected)
{
    std::string body;
    EXPECT_FALSE(
        readVerified(tempPath("hwpr_does_not_exist.bin"), body));
    EXPECT_TRUE(body.empty());
}

TEST(ReadVerified, TruncationRejectedAtEveryLength)
{
    const std::string path = tempPath("hwpr_truncation.bin");
    ASSERT_TRUE(atomicSave(path, [](BinaryWriter &w) {
        writeHeader(w, "trunc-test", 1);
        for (std::uint64_t i = 0; i < 16; ++i)
            w.writeU64(i);
    }));
    const std::string full = readFile(path);
    ASSERT_GT(full.size(), 24u);

    for (std::size_t len = 0; len < full.size(); ++len) {
        writeFile(path, full.substr(0, len));
        std::string body;
        EXPECT_FALSE(readVerified(path, body))
            << "accepted a file truncated to " << len << " bytes";
    }
    std::remove(path.c_str());
}

TEST(ReadVerified, BitFlipsRejectedEverywhere)
{
    const std::string path = tempPath("hwpr_bitflip.bin");
    ASSERT_TRUE(atomicSave(path, [](BinaryWriter &w) {
        writeHeader(w, "flip-test", 2);
        for (std::uint64_t i = 0; i < 32; ++i)
            w.writeDouble(double(i) * 0.25);
    }));
    const std::string full = readFile(path);

    // Flip one bit at a spread of offsets covering header, body and
    // the footer (length, CRC and magic words).
    for (std::size_t pos = 0; pos < full.size();
         pos += full.size() / 37 + 1) {
        for (int bit : {0, 3, 7}) {
            std::string corrupt = full;
            corrupt[pos] = char(corrupt[pos] ^ (1 << bit));
            writeFile(path, corrupt);
            std::string body;
            EXPECT_FALSE(readVerified(path, body))
                << "accepted a bit flip at byte " << pos;
        }
    }
    std::remove(path.c_str());
}

TEST(ReadVerified, LegacyFileWithoutFooterRejected)
{
    // A pre-footer checkpoint (bare header + payload) must fail
    // verification rather than parse as garbage.
    const std::string path = tempPath("hwpr_legacy.bin");
    {
        std::ofstream out(path, std::ios::binary);
        BinaryWriter w(out);
        writeHeader(w, "hwprnas", 2);
        w.writeU64(99);
    }
    std::string body;
    EXPECT_FALSE(readVerified(path, body));
    EXPECT_EQ(checkpointKind(path), "");
    std::remove(path.c_str());
}

// -------------------------------------------------------------------
// Five-surrogate save/load round trips through core::loadSurrogate
// -------------------------------------------------------------------

TEST(SurrogateCheckpoint, HwPrNasRoundTrip)
{
    core::HwPrNasConfig mc;
    mc.encoder = tinyEncoder();
    core::HwPrNas model(mc, nasbench::DatasetId::Cifar10, 1);
    core::TrainConfig tc;
    tc.epochs = 3;
    tc.combinerEpochs = 1;
    model.setFitConfig(tc);
    ExecContext ctx = ExecContext::global().withSeed(7);
    model.fit(tinySurrogateData(), ctx);

    const std::string path = tempPath("hwpr_ckpt_hwprnas.bin");
    ASSERT_TRUE(model.save(path));
    EXPECT_EQ(checkpointKind(path), "hwprnas");
    const auto loaded = core::loadSurrogate(path);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->name(), "HW-PR-NAS");
    expectObjectivesIdentical(model, *loaded, testArchs());
    std::remove(path.c_str());
}

TEST(SurrogateCheckpoint, ScalableRoundTrip)
{
    core::ScalableConfig sc;
    sc.encoder = tinyEncoder();
    core::ScalableHwPrNas model(sc, nasbench::DatasetId::Cifar10, 1);
    core::TrainConfig tc;
    tc.epochs = 3;
    model.setFitConfig(tc);
    ExecContext ctx = ExecContext::global().withSeed(9);
    model.fit(tinySurrogateData(), ctx);

    const std::string path = tempPath("hwpr_ckpt_scalable.bin");
    ASSERT_TRUE(model.save(path));
    EXPECT_EQ(checkpointKind(path), "hwpr-scalable");
    const auto loaded = core::loadSurrogate(path);
    ASSERT_NE(loaded, nullptr);
    expectObjectivesIdentical(model, *loaded, testArchs());
    std::remove(path.c_str());
}

TEST(SurrogateCheckpoint, BrpNasRoundTrip)
{
    baselines::registerBaselineLoaders();
    baselines::BrpNas model(tinyEncoder(),
                            nasbench::DatasetId::Cifar10, 3);
    const auto data = tinySurrogateData();
    model.train(data.train, data.val, data.platform,
                quickPredictorFit());

    const std::string path = tempPath("hwpr_ckpt_brpnas.bin");
    ASSERT_TRUE(model.save(path));
    EXPECT_EQ(checkpointKind(path), "brpnas");
    const auto loaded = core::loadSurrogate(path);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->name(), "BRP-NAS");
    expectObjectivesIdentical(model, *loaded, testArchs());
    std::remove(path.c_str());
}

TEST(SurrogateCheckpoint, GatesRoundTrip)
{
    baselines::registerBaselineLoaders();
    baselines::Gates model(tinyEncoder(),
                           nasbench::DatasetId::Cifar10, 4);
    const auto data = tinySurrogateData();
    model.train(data.train, data.val, data.platform,
                quickPredictorFit());

    const std::string path = tempPath("hwpr_ckpt_gates.bin");
    ASSERT_TRUE(model.save(path));
    EXPECT_EQ(checkpointKind(path), "gates");
    const auto loaded = core::loadSurrogate(path);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->name(), "GATES");
    expectObjectivesIdentical(model, *loaded, testArchs());
    std::remove(path.c_str());
}

TEST(SurrogateCheckpoint, LutRoundTrip)
{
    baselines::registerBaselineLoaders();
    baselines::LatencyLut model(nasbench::DatasetId::Cifar10,
                                hw::PlatformId::EdgeGpu);
    ExecContext ctx = ExecContext::global().withSeed(11);
    model.fit(tinySurrogateData(), ctx);
    ASSERT_GT(model.numEntries(), 0u);

    const std::string path = tempPath("hwpr_ckpt_lut.bin");
    ASSERT_TRUE(model.save(path));
    EXPECT_EQ(checkpointKind(path), "lut");
    const auto loaded = core::loadSurrogate(path);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->name(), "LUT");
    expectObjectivesIdentical(model, *loaded, testArchs());
    std::remove(path.c_str());
}

TEST(SurrogateCheckpoint, CorruptedModelRejectedNotCrashed)
{
    baselines::registerBaselineLoaders();
    baselines::LatencyLut model(nasbench::DatasetId::Cifar10,
                                hw::PlatformId::EdgeGpu);
    ExecContext ctx = ExecContext::global().withSeed(12);
    model.fit(tinySurrogateData(), ctx);
    const std::string path = tempPath("hwpr_ckpt_corrupt.bin");
    ASSERT_TRUE(model.save(path));

    const std::string full = readFile(path);
    for (std::size_t pos = 0; pos < full.size();
         pos += full.size() / 23 + 1) {
        std::string corrupt = full;
        corrupt[pos] = char(corrupt[pos] ^ 0x40);
        writeFile(path, corrupt);
        EXPECT_EQ(core::loadSurrogate(path), nullptr)
            << "accepted a corrupted checkpoint (flip at byte " << pos
            << ")";
    }
    std::remove(path.c_str());
}

TEST(SurrogateCheckpoint, UnknownKindRejected)
{
    const std::string path = tempPath("hwpr_ckpt_unknown.bin");
    ASSERT_TRUE(atomicSave(path, [](BinaryWriter &w) {
        writeHeader(w, "mystery-model", 1);
        w.writeU64(5);
    }));
    EXPECT_EQ(core::loadSurrogate(path), nullptr);
    std::remove(path.c_str());
}

// -------------------------------------------------------------------
// MOEA checkpoint/resume
// -------------------------------------------------------------------

TEST(MoeaCheckpointTest, SaveLoadRoundTrip)
{
    search::MoeaCheckpoint ck;
    ck.populationSize = 4;
    ck.stats.wallSeconds = 1.5;
    ck.stats.simulatedSeconds = 9.0;
    ck.stats.evaluations = 80;
    ck.stats.generations = 5;
    Rng rng(3);
    const search::SearchDomain domain =
        search::SearchDomain::unionBenchmarks();
    for (int i = 0; i < 4; ++i) {
        ck.population.push_back(domain.sample(rng));
        ck.fitness.push_back({double(i), double(10 - i)});
    }
    ck.rngState = rng.saveState();

    const std::string path = tempPath("hwpr_moea_roundtrip.ckpt");
    ASSERT_TRUE(search::saveMoeaCheckpoint(path, ck));
    EXPECT_EQ(checkpointKind(path), "moea-checkpoint");

    search::MoeaCheckpoint back;
    ASSERT_TRUE(search::loadMoeaCheckpoint(path, back));
    EXPECT_EQ(back.populationSize, ck.populationSize);
    EXPECT_DOUBLE_EQ(back.stats.wallSeconds, ck.stats.wallSeconds);
    EXPECT_DOUBLE_EQ(back.stats.simulatedSeconds,
                     ck.stats.simulatedSeconds);
    EXPECT_EQ(back.stats.evaluations, ck.stats.evaluations);
    EXPECT_EQ(back.stats.generations, ck.stats.generations);
    EXPECT_EQ(back.rngState, ck.rngState);
    ASSERT_EQ(back.population.size(), ck.population.size());
    for (std::size_t i = 0; i < back.population.size(); ++i)
        EXPECT_TRUE(back.population[i] == ck.population[i]);
    ASSERT_EQ(back.fitness.size(), ck.fitness.size());
    for (std::size_t i = 0; i < back.fitness.size(); ++i)
        EXPECT_EQ(back.fitness[i], ck.fitness[i]);
    std::remove(path.c_str());
}

TEST(MoeaCheckpointTest, CorruptionRejected)
{
    search::MoeaCheckpoint ck;
    ck.populationSize = 2;
    Rng rng(4);
    const search::SearchDomain domain =
        search::SearchDomain::unionBenchmarks();
    ck.population = {domain.sample(rng), domain.sample(rng)};
    ck.fitness = {{1, 2}, {2, 1}};
    ck.rngState = rng.saveState();
    const std::string path = tempPath("hwpr_moea_corrupt.ckpt");
    ASSERT_TRUE(search::saveMoeaCheckpoint(path, ck));

    const std::string full = readFile(path);
    for (std::size_t pos = 0; pos < full.size();
         pos += full.size() / 19 + 1) {
        std::string corrupt = full;
        corrupt[pos] = char(corrupt[pos] ^ 0x10);
        writeFile(path, corrupt);
        search::MoeaCheckpoint out;
        EXPECT_FALSE(search::loadMoeaCheckpoint(path, out))
            << "accepted corruption at byte " << pos;
    }

    // Wrong kind.
    ASSERT_TRUE(atomicSave(path, [](BinaryWriter &w) {
        writeHeader(w, "hwprnas", 2);
    }));
    search::MoeaCheckpoint out;
    EXPECT_FALSE(search::loadMoeaCheckpoint(path, out));
    std::remove(path.c_str());
}

TEST(MoeaCheckpointTest, OutOfRangeGenomeRejected)
{
    // Hand-craft a checkpoint whose genome gene is out of range for
    // the declared space; the CRC is valid, so only semantic
    // validation can catch it.
    const std::string path = tempPath("hwpr_moea_badgene.ckpt");
    Rng rng(5);
    const std::string state = rng.saveState();
    const auto &space = nasbench::nasBench201();
    ASSERT_TRUE(atomicSave(path, [&](BinaryWriter &w) {
        writeHeader(w, "moea-checkpoint", 1);
        w.writeU64(1); // populationSize
        w.writeDouble(0.0);
        w.writeDouble(0.0);
        w.writeU64(0);
        w.writeU64(0);
        w.writeU64(0);
        w.writeString(state);
        w.writeU64(1); // population count
        w.writeU64(std::uint64_t(nasbench::SpaceId::NasBench201));
        w.writeU64(space.genomeLength());
        for (std::size_t i = 0; i < space.genomeLength(); ++i)
            w.writeI64(9999); // far out of range
        w.writeU64(1); // fitness count
        w.writeDoubles({1.0, 2.0});
    }));
    search::MoeaCheckpoint out;
    EXPECT_FALSE(search::loadMoeaCheckpoint(path, out));
    std::remove(path.c_str());
}

TEST(MoeaResume, BitIdenticalToUninterruptedRun)
{
    const search::SearchDomain domain =
        search::SearchDomain::unionBenchmarks();
    const std::size_t total_gens = 12;

    // Reference: one uninterrupted run.
    HashEvaluator ref_eval;
    Rng ref_rng(42);
    const auto reference = search::Moea(smallMoea(total_gens))
                               .run(domain, ref_eval, ref_rng);

    for (std::size_t stop_at : {std::size_t(1), std::size_t(5),
                                std::size_t(11)}) {
        const std::string dir =
            tempPath("hwpr_moea_resume_" + std::to_string(stop_at));
        std::filesystem::create_directories(dir);

        // "Killed" run: stops after stop_at generations, leaving its
        // checkpoint behind.
        {
            HashEvaluator eval;
            Rng rng(42);
            search::CheckpointOptions ckpt;
            ckpt.dir = dir;
            search::Moea(smallMoea(stop_at))
                .run(domain, eval, rng, ckpt);
        }

        // Resumed run: picks the checkpoint up and finishes.
        search::MoeaCheckpoint resume;
        ASSERT_TRUE(
            search::loadMoeaCheckpoint(dir + "/moea.ckpt", resume));
        EXPECT_EQ(resume.stats.generations, stop_at);
        HashEvaluator eval;
        Rng rng(7777); // seed irrelevant: state comes from the file
        search::CheckpointOptions ckpt;
        ckpt.resume = &resume;
        const auto resumed = search::Moea(smallMoea(total_gens))
                                 .run(domain, eval, rng, ckpt);

        // Population, fitness and accounting all match bit for bit.
        EXPECT_EQ(resumed.stats.generations,
                  reference.stats.generations);
        EXPECT_EQ(resumed.stats.evaluations,
                  reference.stats.evaluations);
        ASSERT_EQ(resumed.population.size(),
                  reference.population.size());
        for (std::size_t i = 0; i < resumed.population.size(); ++i)
            EXPECT_TRUE(resumed.population[i] ==
                        reference.population[i])
                << "population diverged at index " << i
                << " (resumed from generation " << stop_at << ")";
        ASSERT_EQ(resumed.fitness.size(), reference.fitness.size());
        for (std::size_t i = 0; i < resumed.fitness.size(); ++i)
            EXPECT_EQ(resumed.fitness[i], reference.fitness[i]);

        const pareto::Point ref_pt =
            pareto::nadirReference(reference.fitness, 0.1);
        EXPECT_DOUBLE_EQ(
            pareto::hypervolume(resumed.fitness, ref_pt),
            pareto::hypervolume(reference.fitness, ref_pt));
        std::filesystem::remove_all(dir);
    }
}

TEST(MoeaResume, CompletedRunResumesToSameResult)
{
    // Resuming a checkpoint that already reached maxGenerations must
    // return the stored state unchanged (the CI kill-and-resume smoke
    // relies on this when the kill lands after the run finished).
    const search::SearchDomain domain =
        search::SearchDomain::unionBenchmarks();
    const std::string dir = tempPath("hwpr_moea_resume_done");
    std::filesystem::create_directories(dir);

    HashEvaluator eval;
    Rng rng(21);
    search::CheckpointOptions ckpt;
    ckpt.dir = dir;
    const auto full =
        search::Moea(smallMoea(6)).run(domain, eval, rng, ckpt);

    search::MoeaCheckpoint resume;
    ASSERT_TRUE(
        search::loadMoeaCheckpoint(dir + "/moea.ckpt", resume));
    HashEvaluator eval2;
    Rng rng2(1);
    search::CheckpointOptions resume_opts;
    resume_opts.resume = &resume;
    const auto again =
        search::Moea(smallMoea(6)).run(domain, eval2, rng2,
                                       resume_opts);
    ASSERT_EQ(again.population.size(), full.population.size());
    for (std::size_t i = 0; i < again.population.size(); ++i)
        EXPECT_TRUE(again.population[i] == full.population[i]);
    std::filesystem::remove_all(dir);
}

// -------------------------------------------------------------------
// RandomSearch budget handling
// -------------------------------------------------------------------

TEST(RandomSearchBudget, ZeroAffordableEvaluationsReturnsEmpty)
{
    // Each evaluation costs more than the whole budget: the search
    // must report an empty, budget-stopped result instead of
    // aborting the process.
    search::RandomSearchConfig cfg;
    cfg.budget = 50;
    cfg.keep = 10;
    cfg.simulatedBudgetSeconds = 1.0;
    HashEvaluator eval(100.0); // 100 s per evaluation
    Rng rng(2);
    const auto result = search::RandomSearch(cfg).run(
        search::SearchDomain::unionBenchmarks(), eval, rng);
    EXPECT_TRUE(result.population.empty());
    EXPECT_TRUE(result.fitness.empty());
    EXPECT_EQ(result.stats.evaluations, 0u);
    EXPECT_TRUE(result.stats.stoppedByBudget);
}

TEST(RandomSearchBudget, PartialBudgetStillReturnsSurvivors)
{
    search::RandomSearchConfig cfg;
    cfg.budget = 50;
    cfg.keep = 10;
    cfg.simulatedBudgetSeconds = 5.0;
    HashEvaluator eval(1.0); // budget affords 5 of the 50
    Rng rng(3);
    const auto result = search::RandomSearch(cfg).run(
        search::SearchDomain::unionBenchmarks(), eval, rng);
    EXPECT_EQ(result.stats.evaluations, 5u);
    EXPECT_TRUE(result.stats.stoppedByBudget);
    EXPECT_FALSE(result.population.empty());
}

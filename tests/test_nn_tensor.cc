/**
 * @file
 * Autodiff engine tests: forward values for every op and
 * finite-difference gradient checks (the property that justifies
 * trusting every model built on top).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/gradcheck.h"
#include "nn/tensor.h"

using namespace hwpr;
using namespace hwpr::nn;

namespace
{

Matrix
randomMatrix(std::size_t r, std::size_t c, Rng &rng)
{
    Matrix m(r, c);
    for (double &v : m.raw())
        v = rng.normal(0.0, 1.0);
    return m;
}

} // namespace

TEST(Tensor, LeafConstruction)
{
    Tensor p = Tensor::param(Matrix(2, 2, 1.0), "p");
    EXPECT_TRUE(p.requiresGrad());
    Tensor c = Tensor::constant(Matrix(2, 2, 1.0));
    EXPECT_FALSE(c.requiresGrad());
}

TEST(Tensor, AddForward)
{
    Tensor a = Tensor::constant(Matrix(1, 2, {1, 2}));
    Tensor b = Tensor::constant(Matrix(1, 2, {3, 4}));
    const Tensor c = add(a, b);
    EXPECT_DOUBLE_EQ(c.value()(0, 0), 4.0);
    EXPECT_DOUBLE_EQ(c.value()(0, 1), 6.0);
    EXPECT_FALSE(c.requiresGrad()); // no grad parents
}

TEST(Tensor, MatmulBackwardSimple)
{
    // loss = sum(a * b) with a = [1 2; 3 4], b = I => loss = 10.
    Tensor a = Tensor::param(Matrix(2, 2, {1, 2, 3, 4}), "a");
    Tensor b = Tensor::constant(Matrix(2, 2, {1, 0, 0, 1}));
    Tensor loss = sumAll(matmul(a, b));
    EXPECT_DOUBLE_EQ(loss.value()(0, 0), 10.0);
    backward(loss);
    for (double g : a.grad().raw())
        EXPECT_DOUBLE_EQ(g, 1.0);
}

TEST(Tensor, GradAccumulatesAcrossUses)
{
    // loss = sum(a + a): da = 2.
    Tensor a = Tensor::param(Matrix(1, 3, {1, 2, 3}), "a");
    Tensor loss = sumAll(add(a, a));
    backward(loss);
    for (double g : a.grad().raw())
        EXPECT_DOUBLE_EQ(g, 2.0);
}

TEST(Tensor, ZeroGradResets)
{
    Tensor a = Tensor::param(Matrix(1, 1, {2.0}), "a");
    backward(sumAll(a));
    EXPECT_DOUBLE_EQ(a.grad()(0, 0), 1.0);
    a.zeroGrad();
    EXPECT_DOUBLE_EQ(a.grad()(0, 0), 0.0);
}

TEST(Tensor, DropoutIdentityInEval)
{
    Rng rng(1);
    Tensor a = Tensor::param(Matrix(3, 3, 2.0), "a");
    const Tensor out = dropout(a, 0.5, /*training=*/false, rng);
    for (double v : out.value().raw())
        EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(Tensor, DropoutScalesSurvivors)
{
    Rng rng(2);
    Tensor a = Tensor::param(Matrix(50, 50, 1.0), "a");
    const Tensor out = dropout(a, 0.5, /*training=*/true, rng);
    int zeros = 0, scaled = 0;
    for (double v : out.value().raw()) {
        if (v == 0.0)
            ++zeros;
        else if (std::abs(v - 2.0) < 1e-12)
            ++scaled;
        else
            FAIL() << "unexpected dropout output " << v;
    }
    EXPECT_GT(zeros, 800);
    EXPECT_GT(scaled, 800);
}

/** Parameterized gradcheck across the elementwise/structural ops. */
class OpGradCheck : public ::testing::TestWithParam<int>
{
};

TEST_P(OpGradCheck, AllOpsMatchFiniteDifferences)
{
    Rng rng(GetParam() + 7);
    Tensor p = Tensor::param(randomMatrix(3, 4, rng), "p");
    Tensor q = Tensor::param(randomMatrix(3, 4, rng), "q");
    Tensor w = Tensor::param(randomMatrix(4, 2, rng), "w");
    Tensor bias = Tensor::param(randomMatrix(1, 4, rng), "b");

    struct Case
    {
        const char *name;
        std::function<Tensor()> build;
    };
    const std::vector<Case> cases = {
        {"add", [&] { return meanAll(add(p, q)); }},
        {"sub", [&] { return meanAll(sub(p, q)); }},
        {"mul", [&] { return meanAll(mul(p, q)); }},
        {"scale", [&] { return meanAll(scale(p, -2.5)); }},
        {"matmul", [&] { return meanAll(matmul(p, w)); }},
        {"bias", [&] { return meanAll(addRowBroadcast(p, bias)); }},
        {"tanh", [&] { return meanAll(tanhT(p)); }},
        {"sigmoid", [&] { return meanAll(sigmoid(p)); }},
        {"concat", [&] { return meanAll(concatCols(p, q)); }},
        {"slice", [&] { return meanAll(sliceCols(p, 1, 3)); }},
        {"sum", [&] { return sumAll(mul(p, p)); }},
    };
    for (const auto &c : cases) {
        for (Tensor leaf : {p, q, w, bias}) {
            const double err = gradCheck(c.build, leaf, 1e-6);
            EXPECT_LT(err, 1e-6)
                << "op " << c.name << " leaf " << leaf.name();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpGradCheck, ::testing::Range(0, 4));

TEST(OpGradCheckSpecial, ReluAwayFromKink)
{
    // Use inputs bounded away from 0 where ReLU is differentiable.
    Rng rng(3);
    Matrix m = randomMatrix(3, 3, rng);
    for (double &v : m.raw())
        v += v >= 0.0 ? 0.5 : -0.5;
    Tensor p = Tensor::param(std::move(m), "p");
    const double err =
        gradCheck([&] { return meanAll(relu(p)); }, p, 1e-6);
    EXPECT_LT(err, 1e-6);
}

TEST(OpGradCheckSpecial, GatherRows)
{
    Rng rng(4);
    Tensor table = Tensor::param(randomMatrix(6, 3, rng), "table");
    const std::vector<std::size_t> idx = {0, 2, 2, 5};
    const double err = gradCheck(
        [&] { return meanAll(gatherRows(table, idx)); }, table, 1e-6);
    EXPECT_LT(err, 1e-6);
}

TEST(OpGradCheckSpecial, BlockAdjacencyMatmul)
{
    Rng rng(5);
    // Two graphs with 3 and 2 nodes stacked into 5 rows.
    std::vector<Matrix> adj = {randomMatrix(3, 3, rng),
                               randomMatrix(2, 2, rng)};
    const std::vector<std::size_t> offsets = {0, 3};
    Tensor h = Tensor::param(randomMatrix(5, 4, rng), "h");
    const double err = gradCheck(
        [&] {
            return meanAll(blockAdjacencyMatmul(h, adj, offsets));
        },
        h, 1e-6);
    EXPECT_LT(err, 1e-6);
}

TEST(OpGradCheckSpecial, GatherBlockRows)
{
    Rng rng(6);
    Tensor h = Tensor::param(randomMatrix(5, 4, rng), "h");
    const std::vector<std::size_t> offsets = {0, 3};
    const std::vector<std::size_t> rows = {2, 1};
    const double err = gradCheck(
        [&] { return meanAll(gatherBlockRows(h, offsets, rows)); }, h,
        1e-6);
    EXPECT_LT(err, 1e-6);
}

TEST(Backward, DiamondGraphTopologicalOrder)
{
    // y = (a*a) + (a*a): reuse of an intermediate node must not double
    // propagate. dy/da = 4a.
    Tensor a = Tensor::param(Matrix(1, 1, {3.0}), "a");
    Tensor sq = mul(a, a);
    Tensor loss = sumAll(add(sq, sq));
    backward(loss);
    EXPECT_DOUBLE_EQ(a.grad()(0, 0), 12.0);
}

TEST(Backward, DeepChainStaysStable)
{
    Tensor a = Tensor::param(Matrix(1, 1, {0.5}), "a");
    Tensor x = a;
    for (int i = 0; i < 100; ++i)
        x = tanhT(x);
    backward(sumAll(x));
    EXPECT_TRUE(std::isfinite(a.grad()(0, 0)));
}

/**
 * @file
 * Tests for the Pareto library: dominance semantics, the Eqs. 1-3
 * invariants of non-dominated sorting (property-checked on random
 * point clouds), crowding distance, and hypervolume (known values,
 * monotonicity, normalization).
 */

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"
#include "pareto/pareto.h"

using namespace hwpr;
using pareto::Point;

TEST(Dominance, Basic)
{
    EXPECT_TRUE(pareto::dominates({1, 1}, {2, 2}));
    EXPECT_TRUE(pareto::dominates({1, 2}, {1, 3}));
    EXPECT_FALSE(pareto::dominates({1, 2}, {2, 1}));
    EXPECT_FALSE(pareto::dominates({1, 1}, {1, 1}));
}

TEST(Dominance, Irreflexive)
{
    const Point p = {3.0, 4.0, 5.0};
    EXPECT_FALSE(pareto::dominates(p, p));
}

TEST(Dominance, Asymmetric)
{
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        Point a = {rng.uniform(), rng.uniform()};
        Point b = {rng.uniform(), rng.uniform()};
        EXPECT_FALSE(pareto::dominates(a, b) &&
                     pareto::dominates(b, a));
    }
}

TEST(ParetoRanks, SimpleFronts)
{
    // (1,1) dominates everything; (2,2) dominates (3,3).
    const std::vector<Point> pts = {{3, 3}, {1, 1}, {2, 2}};
    const auto ranks = pareto::paretoRanks(pts);
    EXPECT_EQ(ranks[1], 1);
    EXPECT_EQ(ranks[2], 2);
    EXPECT_EQ(ranks[0], 3);
}

TEST(ParetoRanks, IncomparableShareFrontOne)
{
    const std::vector<Point> pts = {{1, 4}, {2, 3}, {3, 2}, {4, 1}};
    for (int r : pareto::paretoRanks(pts))
        EXPECT_EQ(r, 1);
}

TEST(ParetoRanks, EmptyInput)
{
    EXPECT_TRUE(pareto::paretoRanks({}).empty());
}

TEST(ParetoRanks, NanPointsGetWorstRank)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    // Without the NaN guard, dominates() is false both ways for the
    // NaN point, so it would sit undominated in front 1.
    const std::vector<Point> pts = {
        {3, 3}, {nan, 1}, {1, 1}, {2, nan}};
    const auto ranks = pareto::paretoRanks(pts);
    EXPECT_EQ(ranks[2], 1);
    EXPECT_EQ(ranks[0], 2);
    // Both NaN points share a rank strictly worse than every finite
    // point.
    EXPECT_EQ(ranks[1], 3);
    EXPECT_EQ(ranks[3], 3);
}

TEST(ParetoRanks, AllNanShareRankOne)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const std::vector<Point> pts = {{nan, 1}, {1, nan}};
    for (int r : pareto::paretoRanks(pts))
        EXPECT_EQ(r, 1);
}

TEST(ParetoRanks, NanPointsNeverNonDominated)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const std::vector<Point> pts = {{nan, 0}, {5, 5}};
    const auto front = pareto::nonDominatedIndices(pts);
    ASSERT_EQ(front.size(), 1u);
    EXPECT_EQ(front[0], 1u);
}

/**
 * Property test over random clouds: the three conditions the paper
 * states for the Pareto-rank sorting (Eqs. 1-3).
 */
class NdsPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(NdsPropertyTest, PaperEquationsHold)
{
    Rng rng(GetParam());
    const std::size_t n = 40;
    std::vector<Point> pts(n);
    for (auto &p : pts)
        p = {std::floor(rng.uniform(0, 10)),
             std::floor(rng.uniform(0, 10))};

    const auto fronts = pareto::paretoFronts(pts);

    // Eq. 1: within one front, no point dominates another.
    for (const auto &front : fronts) {
        for (std::size_t a : front)
            for (std::size_t b : front)
                if (a != b)
                    EXPECT_FALSE(pareto::dominates(pts[a], pts[b]));
    }
    for (std::size_t k = 0; k + 1 < fronts.size(); ++k) {
        for (std::size_t i : fronts[k + 1]) {
            bool dominated_by_front_k = false;
            for (std::size_t j : fronts[k]) {
                // Eq. 2: a rank-(k+1) point never dominates a rank-k
                // point.
                EXPECT_FALSE(pareto::dominates(pts[i], pts[j]));
                if (pareto::dominates(pts[j], pts[i]))
                    dominated_by_front_k = true;
            }
            // Eq. 3: it is dominated by at least one rank-k point.
            EXPECT_TRUE(dominated_by_front_k);
        }
    }

    // Fronts partition the set.
    std::size_t covered = 0;
    for (const auto &front : fronts)
        covered += front.size();
    EXPECT_EQ(covered, n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NdsPropertyTest,
                         ::testing::Range(0, 15));

TEST(Crowding, BoundaryPointsInfinite)
{
    const std::vector<Point> front = {{1, 4}, {2, 3}, {3, 2}, {4, 1}};
    const auto d = pareto::crowdingDistance(front);
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(d[0], inf);
    EXPECT_EQ(d[3], inf);
    EXPECT_GT(d[1], 0.0);
    EXPECT_TRUE(std::isfinite(d[1]));
}

TEST(Crowding, DenserPointLowerDistance)
{
    // Middle point at index 1 is crowded between 0 and 2.
    const std::vector<Point> front = {
        {0, 10}, {1, 9}, {1.2, 8.8}, {10, 0}};
    const auto d = pareto::crowdingDistance(front);
    EXPECT_LT(d[2], d[1] + 1e12); // both finite
    EXPECT_TRUE(std::isfinite(d[1]));
    EXPECT_TRUE(std::isfinite(d[2]));
}

TEST(Hypervolume, KnownRectangles2D)
{
    // Single point (1,1) vs ref (3,3): area 2x2 = 4.
    EXPECT_DOUBLE_EQ(pareto::hypervolume({{1, 1}}, {3, 3}), 4.0);
    // Two staircase points.
    EXPECT_DOUBLE_EQ(
        pareto::hypervolume({{1, 2}, {2, 1}}, {3, 3}),
        2.0 + 2.0 - 1.0);
    // Dominated point adds nothing.
    EXPECT_DOUBLE_EQ(
        pareto::hypervolume({{1, 1}, {2, 2}}, {3, 3}), 4.0);
    // Point beyond the reference contributes nothing.
    EXPECT_DOUBLE_EQ(pareto::hypervolume({{4, 4}}, {3, 3}), 0.0);
}

TEST(Hypervolume, Known3D)
{
    // Single point (1,1,1) vs ref (2,2,2): volume 1.
    EXPECT_DOUBLE_EQ(pareto::hypervolume({{1, 1, 1}}, {2, 2, 2}), 1.0);
    // Two disjoint-ish boxes.
    const double hv = pareto::hypervolume({{0, 1, 1}, {1, 0, 1}},
                                          {2, 2, 2});
    // Union of two 2x1x1... computed by inclusion-exclusion:
    // box1 = (2-0)(2-1)(2-1) = 2, box2 = 2, overlap = (2-1)^2*(2-1)=1.
    EXPECT_DOUBLE_EQ(hv, 3.0);
}

class HvMonotonicityTest : public ::testing::TestWithParam<int>
{
};

TEST_P(HvMonotonicityTest, AddingPointsNeverDecreasesHv)
{
    Rng rng(GetParam() + 100);
    const Point ref = {10, 10};
    std::vector<Point> pts;
    double prev = 0.0;
    for (int i = 0; i < 30; ++i) {
        pts.push_back({rng.uniform(0, 10), rng.uniform(0, 10)});
        const double hv = pareto::hypervolume(pts, ref);
        EXPECT_GE(hv, prev - 1e-12);
        prev = hv;
    }
    // HV is bounded by the reference box.
    EXPECT_LE(prev, 100.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HvMonotonicityTest,
                         ::testing::Range(0, 8));

TEST(Hypervolume, DominatedSubsetHasSmallerOrEqualHv)
{
    Rng rng(9);
    std::vector<Point> pts;
    for (int i = 0; i < 50; ++i)
        pts.push_back({rng.uniform(0, 5), rng.uniform(0, 5)});
    const Point ref = pareto::nadirReference(pts, 0.1);
    std::vector<Point> front;
    for (std::size_t i : pareto::nonDominatedIndices(pts))
        front.push_back(pts[i]);
    // The front alone carries the entire hypervolume.
    EXPECT_NEAR(pareto::hypervolume(front, ref),
                pareto::hypervolume(pts, ref), 1e-9);
}

TEST(Hypervolume, NormalizedAtMostOneForSubsets)
{
    Rng rng(10);
    std::vector<Point> pts;
    for (int i = 0; i < 60; ++i)
        pts.push_back({rng.uniform(0, 5), rng.uniform(0, 5)});
    std::vector<Point> true_front;
    for (std::size_t i : pareto::nonDominatedIndices(pts))
        true_front.push_back(pts[i]);
    // Any subset of the cloud is dominated by the true front.
    std::vector<Point> approx(pts.begin(), pts.begin() + 20);
    const Point ref = pareto::nadirReference(pts, 0.1);
    const double nhv =
        pareto::normalizedHypervolume(approx, true_front, ref);
    EXPECT_GE(nhv, 0.0);
    EXPECT_LE(nhv, 1.0 + 1e-12);
}

TEST(NadirReference, ComponentwiseWorst)
{
    const std::vector<Point> pts = {{1, 5}, {4, 2}};
    const Point nadir = pareto::nadirReference(pts);
    EXPECT_DOUBLE_EQ(nadir[0], 4.0);
    EXPECT_DOUBLE_EQ(nadir[1], 5.0);
    const Point inflated = pareto::nadirReference(pts, 0.5);
    EXPECT_GT(inflated[0], 4.0);
}

TEST(HypervolumeWfg, MatchesSweepIn2D)
{
    Rng rng(50);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<Point> pts;
        for (int i = 0; i < 12; ++i)
            pts.push_back({rng.uniform(0, 5), rng.uniform(0, 5)});
        const Point ref = {5.5, 5.5};
        EXPECT_NEAR(pareto::hypervolumeWfg(pts, ref),
                    pareto::hypervolume(pts, ref), 1e-9);
    }
}

TEST(HypervolumeWfg, MatchesSweepIn3D)
{
    Rng rng(51);
    for (int trial = 0; trial < 6; ++trial) {
        std::vector<Point> pts;
        for (int i = 0; i < 10; ++i)
            pts.push_back({rng.uniform(0, 3), rng.uniform(0, 3),
                           rng.uniform(0, 3)});
        const Point ref = {3.2, 3.2, 3.2};
        EXPECT_NEAR(pareto::hypervolumeWfg(pts, ref),
                    pareto::hypervolume(pts, ref), 1e-9);
    }
}

TEST(HypervolumeWfg, FourObjectivesKnownBox)
{
    // Single point in 4-D: the box volume.
    EXPECT_DOUBLE_EQ(
        pareto::hypervolume({{1, 1, 1, 1}},
                            {3, 2, 4, 1.5}),
        2.0 * 1.0 * 3.0 * 0.5);
    // Two identical points count once.
    EXPECT_DOUBLE_EQ(
        pareto::hypervolume({{1, 1, 1, 1}, {1, 1, 1, 1}},
                            {2, 2, 2, 2}),
        1.0);
}

TEST(Hypervolume, NanPointsContributeNothing)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    // 2-D sweep, 3-D sweep and the WFG recursion (4-D) must all drop
    // NaN points at the clipping step instead of absorbing NaN into
    // the accumulation.
    EXPECT_DOUBLE_EQ(
        pareto::hypervolume({{1, 1}, {nan, 0}}, {3, 3}), 4.0);
    EXPECT_DOUBLE_EQ(
        pareto::hypervolume({{1, 1, 1}, {0, nan, 0}}, {2, 2, 2}), 1.0);
    EXPECT_DOUBLE_EQ(
        pareto::hypervolume({{1, 1, 1, 1}, {nan, 0, 0, 0}},
                            {2, 2, 2, 2}),
        1.0);
    // A cloud of only NaN points has zero hypervolume.
    EXPECT_DOUBLE_EQ(pareto::hypervolume({{nan, nan}}, {3, 3}), 0.0);
}

TEST(Hypervolume, InfinitePointsContributeNothing)
{
    // Regression found by the property suite: a -inf objective used
    // to claim infinite volume in the sweeps, and NaN (inf * 0
    // against a zero-width box) in the WFG recursion. Non-finite
    // objectives are surrogate failures and must contribute nothing.
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_DOUBLE_EQ(pareto::hypervolumeWfg({{-inf, 10.0}}, {1, 10}),
                     0.0);
    EXPECT_DOUBLE_EQ(pareto::hypervolume({{1, 1}, {-inf, 0}}, {3, 3}),
                     4.0);
    EXPECT_DOUBLE_EQ(pareto::hypervolumeWfg({{1, 1}, {-inf, 0}}, {3, 3}),
                     4.0);
    EXPECT_DOUBLE_EQ(
        pareto::hypervolume({{1, 1, 1}, {-inf, 0, 0}}, {2, 2, 2}), 1.0);
    EXPECT_DOUBLE_EQ(
        pareto::hypervolume({{1, 1, 1, 1}, {0, -inf, 0, 0}},
                            {2, 2, 2, 2}),
        1.0);
    // +inf objectives simply fail the <= ref clip.
    EXPECT_DOUBLE_EQ(pareto::hypervolume({{inf, 0}}, {3, 3}), 0.0);
}

TEST(Hypervolume, NonFiniteReferenceIsRejected)
{
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_DEATH(pareto::hypervolume({{1.0, 1.0}}, {inf, 3.0}),
                 "non-finite hypervolume reference");
}

TEST(HypervolumeWfg, FourObjectivesInclusionExclusion)
{
    // Two boxes overlapping in 4-D, checked by hand:
    // a = (0,1,1,1), b = (1,0,1,1), ref = (2,2,2,2).
    // vol(a) = 2*1*1*1 = 2, vol(b) = 2, overlap = 1*1*1*1 = 1.
    const double hv = pareto::hypervolume(
        {{0, 1, 1, 1}, {1, 0, 1, 1}}, {2, 2, 2, 2});
    EXPECT_DOUBLE_EQ(hv, 3.0);
}

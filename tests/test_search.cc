/**
 * @file
 * Search-algorithm tests: domain genetic operators over the union
 * space, MOEA convergence (hypervolume improves over random), score
 * vs vector selection semantics, budget accounting, and front
 * measurement.
 */

#include <gtest/gtest.h>

#include "pareto/pareto.h"
#include "search/aging.h"
#include "search/domain.h"
#include "search/moea.h"
#include "search/report.h"
#include "search/surrogate_evaluator.h"

using namespace hwpr;
using namespace hwpr::search;

namespace
{

/** Cheap objective evaluator used to test the search machinery:
 *  objective 1 = number of conv3x3 genes (negated), objective 2 =
 *  number of non-zero genes — a toy trade-off with a known optimum. */
class ToyEvaluator : public Evaluator
{
  public:
    EvalKind kind() const override { return EvalKind::ObjectiveVector; }
    std::string name() const override { return "toy"; }

    std::vector<pareto::Point>
    evaluate(const std::vector<nasbench::Architecture> &archs) override
    {
        std::vector<pareto::Point> out;
        for (const auto &a : archs) {
            double convs = 0.0, active = 0.0;
            for (int g : a.genome) {
                if (g == 3)
                    convs += 1.0;
                if (g != 0)
                    active += 1.0;
            }
            out.push_back({-convs, active});
        }
        return out;
    }

    double
    simulatedCostSeconds(std::size_t batch) const override
    {
        return double(batch) * costPerEval;
    }

    double costPerEval = 0.0;
};

} // namespace

TEST(Domain, SingleSpaceSampling)
{
    const auto domain = SearchDomain::single(nasbench::nasBench201());
    Rng rng(1);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(domain.sample(rng).space,
                  nasbench::SpaceId::NasBench201);
}

TEST(Domain, UnionSamplesBothSpaces)
{
    const auto domain = SearchDomain::unionBenchmarks();
    Rng rng(2);
    int nb = 0, fb = 0;
    for (int i = 0; i < 100; ++i) {
        const auto a = domain.sample(rng);
        (a.space == nasbench::SpaceId::NasBench201 ? nb : fb)++;
    }
    EXPECT_GT(nb, 20);
    EXPECT_GT(fb, 20);
}

TEST(Domain, CrossSpaceCrossoverFallsBackToMutation)
{
    const auto domain = SearchDomain::unionBenchmarks();
    Rng rng(3);
    nasbench::Architecture a = nasbench::nasBench201().sample(rng);
    nasbench::Architecture b = nasbench::fbnet().sample(rng);
    const auto child = domain.crossover(a, b, 0.2, rng);
    EXPECT_TRUE(child.space == a.space || child.space == b.space);
    nasbench::spaceFor(child.space).checkArch(child);
}

TEST(TrueEvaluatorTest, ObjectivesMatchOracle)
{
    nasbench::Oracle oracle(nasbench::DatasetId::Cifar10);
    TrueEvaluator eval(oracle, hw::PlatformId::Pixel3);
    Rng rng(4);
    const auto a = nasbench::nasBench201().sample(rng);
    const auto pts = eval.evaluate({a});
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_DOUBLE_EQ(pts[0][0], 100.0 - oracle.accuracy(a));
    EXPECT_DOUBLE_EQ(pts[0][1],
                     oracle.latencyMs(a, hw::PlatformId::Pixel3));
}

TEST(TrueEvaluatorTest, EnergyObjectiveOptional)
{
    nasbench::Oracle oracle(nasbench::DatasetId::Cifar10);
    TrueEvaluator eval(oracle, hw::PlatformId::EdgeGpu, true);
    EXPECT_EQ(eval.numObjectives(), 3u);
    Rng rng(5);
    const auto pts =
        eval.evaluate({nasbench::nasBench201().sample(rng)});
    EXPECT_EQ(pts[0].size(), 3u);
}

TEST(Moea, ImprovesOverRandomOnToyProblem)
{
    const auto domain = SearchDomain::single(nasbench::nasBench201());
    ToyEvaluator toy;

    MoeaConfig mc;
    mc.populationSize = 30;
    mc.maxGenerations = 20;
    mc.simulatedBudgetSeconds = 0.0;
    Rng rng(6);
    const auto moea_result = Moea(mc).run(domain, toy, rng);

    RandomSearchConfig rc;
    rc.budget = 30; // same population, no evolution
    rc.keep = 30;
    rc.simulatedBudgetSeconds = 0.0;
    Rng rng2(6);
    const auto random_result =
        RandomSearch(rc).run(domain, toy, rng2);

    const pareto::Point ref = {1.0, 7.0};
    const double hv_moea =
        pareto::hypervolume(moea_result.fitness, ref);
    const double hv_rand =
        pareto::hypervolume(random_result.fitness, ref);
    EXPECT_GT(hv_moea, hv_rand);
    // The optimum (-6 convs, 6 active) must be found by the MOEA.
    bool found_all_conv = false;
    for (const auto &f : moea_result.fitness)
        if (f[0] == -6.0)
            found_all_conv = true;
    EXPECT_TRUE(found_all_conv);
}

TEST(Moea, ScoreModeKeepsTopScores)
{
    const auto domain = SearchDomain::single(nasbench::nasBench201());
    // Score = number of conv3x3 genes: optimum is all-conv.
    ParetoScoreEvaluator eval(
        "toy-score",
        [](const std::vector<nasbench::Architecture> &archs) {
            std::vector<double> s;
            for (const auto &a : archs) {
                double convs = 0.0;
                for (int g : a.genome)
                    if (g == 3)
                        convs += 1.0;
                s.push_back(convs);
            }
            return s;
        });
    MoeaConfig mc;
    mc.populationSize = 24;
    mc.maxGenerations = 15;
    mc.simulatedBudgetSeconds = 0.0;
    Rng rng(7);
    const auto result = Moea(mc).run(domain, eval, rng);
    // Elitist top-k: the best individual must be all-conv (score 6).
    double best = 0.0;
    for (const auto &f : result.fitness)
        best = std::max(best, f[0]);
    EXPECT_DOUBLE_EQ(best, 6.0);
}

TEST(Moea, PopulationSizePreserved)
{
    const auto domain = SearchDomain::unionBenchmarks();
    ToyEvaluator toy;
    MoeaConfig mc;
    mc.populationSize = 17;
    mc.maxGenerations = 3;
    mc.simulatedBudgetSeconds = 0.0;
    Rng rng(8);
    const auto result = Moea(mc).run(domain, toy, rng);
    EXPECT_EQ(result.population.size(), 17u);
    EXPECT_EQ(result.fitness.size(), 17u);
    EXPECT_EQ(result.stats.generations, 3u);
    EXPECT_EQ(result.stats.evaluations, 17u * 4u); // init + 3 gens
}

TEST(Moea, SimulatedBudgetStopsSearch)
{
    const auto domain = SearchDomain::single(nasbench::nasBench201());
    ToyEvaluator toy;
    toy.costPerEval = 100.0;
    MoeaConfig mc;
    mc.populationSize = 10;
    mc.maxGenerations = 100;
    mc.simulatedBudgetSeconds = 2500.0; // init + 1 generation fit
    Rng rng(9);
    const auto result = Moea(mc).run(domain, toy, rng);
    EXPECT_TRUE(result.stats.stoppedByBudget);
    EXPECT_LT(result.stats.generations, 100u);
    // Budget is checked before each generation's charge: the search
    // never accounts past it (init 1000s + one 1000s generation fit;
    // a second generation would have overshot).
    EXPECT_LE(result.stats.simulatedSeconds, 2500.0);
    EXPECT_DOUBLE_EQ(result.stats.simulatedSeconds, 2000.0);
    EXPECT_EQ(result.stats.generations, 1u);
}

TEST(Moea, BudgetBelowInitialPopulationReturnsEmpty)
{
    const auto domain = SearchDomain::single(nasbench::nasBench201());
    ToyEvaluator toy;
    toy.costPerEval = 100.0;
    MoeaConfig mc;
    mc.populationSize = 10;
    mc.maxGenerations = 100;
    mc.simulatedBudgetSeconds = 500.0; // init alone would cost 1000
    Rng rng(9);
    const auto result = Moea(mc).run(domain, toy, rng);
    EXPECT_TRUE(result.stats.stoppedByBudget);
    EXPECT_TRUE(result.population.empty());
    EXPECT_EQ(result.stats.evaluations, 0u);
    EXPECT_DOUBLE_EQ(result.stats.simulatedSeconds, 0.0);
}

TEST(RandomSearchTest, BudgetRespected)
{
    const auto domain = SearchDomain::single(nasbench::fbnet());
    ToyEvaluator toy;
    RandomSearchConfig rc;
    rc.budget = 100;
    rc.keep = 25;
    rc.simulatedBudgetSeconds = 0.0;
    Rng rng(10);
    const auto result = RandomSearch(rc).run(domain, toy, rng);
    EXPECT_EQ(result.stats.evaluations, 100u);
    EXPECT_EQ(result.population.size(), 25u);
}

TEST(Report, FrontIsNonDominatedSubset)
{
    nasbench::Oracle oracle(nasbench::DatasetId::Cifar10);
    TrueEvaluator eval(oracle, hw::PlatformId::EdgeGpu);
    const auto domain = SearchDomain::unionBenchmarks();
    RandomSearchConfig rc;
    rc.budget = 60;
    rc.keep = 60;
    rc.simulatedBudgetSeconds = 0.0;
    Rng rng(11);
    const auto result = RandomSearch(rc).run(domain, eval, rng);
    const auto report =
        measureFront(result, oracle, hw::PlatformId::EdgeGpu);
    ASSERT_FALSE(report.front.empty());
    EXPECT_EQ(report.objectives.size(), result.population.size());
    // No front member dominates another.
    for (const auto &a : report.front)
        for (const auto &b : report.front)
            if (&a != &b)
                EXPECT_FALSE(pareto::dominates(a, b));
    // Every non-front member is dominated by some front member.
    for (std::size_t i = 0; i < report.objectives.size(); ++i) {
        const bool on_front =
            std::find(report.frontIdx.begin(), report.frontIdx.end(),
                      i) != report.frontIdx.end();
        if (on_front)
            continue;
        bool dominated = false;
        for (const auto &f : report.front)
            if (pareto::dominates(f, report.objectives[i]))
                dominated = true;
        EXPECT_TRUE(dominated);
    }
}

TEST(Report, TrueFrontOfSample)
{
    nasbench::Oracle oracle(nasbench::DatasetId::Cifar10);
    Rng rng(12);
    std::vector<nasbench::Architecture> archs;
    for (int i = 0; i < 40; ++i)
        archs.push_back(nasbench::nasBench201().sample(rng));
    const auto front =
        trueFrontOf(archs, oracle, hw::PlatformId::Eyeriss);
    EXPECT_FALSE(front.empty());
    EXPECT_LE(front.size(), archs.size());
}

TEST(SurrogateEvaluators, VectorShapes)
{
    VectorSurrogateEvaluator eval(
        "two-model",
        {[](const std::vector<nasbench::Architecture> &archs) {
             return std::vector<double>(archs.size(), 1.0);
         },
         [](const std::vector<nasbench::Architecture> &archs) {
             return std::vector<double>(archs.size(), 2.0);
         }});
    EXPECT_EQ(eval.kind(), EvalKind::ObjectiveVector);
    EXPECT_EQ(eval.numObjectives(), 2u);
    Rng rng(13);
    const auto pts =
        eval.evaluate({nasbench::nasBench201().sample(rng)});
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_DOUBLE_EQ(pts[0][0], 1.0);
    EXPECT_DOUBLE_EQ(pts[0][1], 2.0);
}

TEST(AgingEvolutionTest, FindsOptimumOnToyScore)
{
    const auto domain = SearchDomain::single(nasbench::nasBench201());
    ParetoScoreEvaluator eval(
        "toy-score",
        [](const std::vector<nasbench::Architecture> &archs) {
            std::vector<double> s;
            for (const auto &a : archs) {
                double convs = 0.0;
                for (int g : a.genome)
                    if (g == 3)
                        convs += 1.0;
                s.push_back(convs);
            }
            return s;
        });
    AgingConfig ac;
    ac.populationSize = 24;
    ac.totalEvaluations = 400;
    ac.keep = 10;
    Rng rng(21);
    const auto result = AgingEvolution(ac).run(domain, eval, rng);
    ASSERT_EQ(result.population.size(), 10u);
    EXPECT_DOUBLE_EQ(result.fitness[0][0], 6.0); // all-conv found
    EXPECT_EQ(result.stats.evaluations, 400u);
}

TEST(AgingEvolutionTest, VectorModeKeepsFrontFirst)
{
    const auto domain = SearchDomain::single(nasbench::nasBench201());
    ToyEvaluator toy;
    AgingConfig ac;
    ac.populationSize = 20;
    ac.totalEvaluations = 200;
    ac.keep = 30;
    Rng rng(22);
    const auto result = AgingEvolution(ac).run(domain, toy, rng);
    EXPECT_EQ(result.population.size(), 30u);
    // The kept set must contain the full first front of itself.
    const auto ranks = pareto::paretoRanks(result.fitness);
    EXPECT_EQ(ranks[0], 1);
}

TEST(AgingEvolutionTest, BudgetStops)
{
    const auto domain = SearchDomain::single(nasbench::fbnet());
    ToyEvaluator toy;
    toy.costPerEval = 50.0;
    AgingConfig ac;
    ac.populationSize = 10;
    ac.totalEvaluations = 10000;
    ac.simulatedBudgetSeconds = 1000.0;
    Rng rng(23);
    const auto result = AgingEvolution(ac).run(domain, toy, rng);
    EXPECT_TRUE(result.stats.stoppedByBudget);
    EXPECT_LT(result.stats.evaluations, 10000u);
    // Seed (500s) + exactly 10 affordable children; the 11th charge
    // would overshoot and must not be made.
    EXPECT_EQ(result.stats.evaluations, 20u);
    EXPECT_DOUBLE_EQ(result.stats.simulatedSeconds, 1000.0);
}

TEST(AgingEvolutionTest, BudgetExhaustedAtSeedReturnsEmpty)
{
    const auto domain = SearchDomain::single(nasbench::nasBench201());
    ToyEvaluator toy;
    toy.costPerEval = 100.0;
    AgingConfig ac;
    ac.populationSize = 10;
    ac.totalEvaluations = 100;
    ac.simulatedBudgetSeconds = 500.0; // seed alone would cost 1000
    Rng rng(24);
    const auto result = AgingEvolution(ac).run(domain, toy, rng);
    // The seed population is not evaluated (and not charged) when the
    // budget cannot fund it: same early-empty semantics as
    // RandomSearch and Moea.
    EXPECT_TRUE(result.stats.stoppedByBudget);
    EXPECT_TRUE(result.population.empty());
    EXPECT_EQ(result.stats.evaluations, 0u);
    EXPECT_DOUBLE_EQ(result.stats.simulatedSeconds, 0.0);
}

TEST(AgingEvolutionTest, BudgetExhaustedMidLoopNeverOvershoots)
{
    const auto domain = SearchDomain::single(nasbench::nasBench201());
    ToyEvaluator toy;
    toy.costPerEval = 30.0;
    AgingConfig ac;
    ac.populationSize = 4;
    ac.totalEvaluations = 1000;
    ac.simulatedBudgetSeconds = 400.0; // seed 120 + 9 children = 390
    Rng rng(25);
    const auto result = AgingEvolution(ac).run(domain, toy, rng);
    EXPECT_TRUE(result.stats.stoppedByBudget);
    EXPECT_LE(result.stats.simulatedSeconds,
              ac.simulatedBudgetSeconds);
    EXPECT_EQ(result.stats.evaluations, 13u); // 4 seed + 9 children
    EXPECT_DOUBLE_EQ(result.stats.simulatedSeconds, 390.0);
}

TEST(AgingEvolutionTest, KeepZeroKeepsWholeHistory)
{
    const auto domain = SearchDomain::single(nasbench::nasBench201());
    ToyEvaluator toy;
    AgingConfig ac;
    ac.populationSize = 8;
    ac.totalEvaluations = 40;
    ac.keep = 0; // documented: whole history
    Rng rng(26);
    const auto result = AgingEvolution(ac).run(domain, toy, rng);
    EXPECT_EQ(result.population.size(), 40u);
    EXPECT_EQ(result.fitness.size(), 40u);
}

TEST(AgingEvolutionTest, KeepSmallerThanFrontTruncatesFront)
{
    const auto domain = SearchDomain::single(nasbench::nasBench201());
    ToyEvaluator toy;
    AgingConfig ac;
    ac.populationSize = 16;
    ac.totalEvaluations = 120;
    ac.keep = 3; // well below the toy problem's first front
    Rng rng(27);
    const auto result = AgingEvolution(ac).run(domain, toy, rng);
    ASSERT_EQ(result.population.size(), 3u);
    // Every kept member comes from the history's first front, so the
    // kept set must be mutually non-dominated.
    for (const auto &a : result.fitness)
        for (const auto &b : result.fitness)
            if (&a != &b)
                EXPECT_FALSE(pareto::dominates(a, b));
}

TEST(AgingEvolutionTest, SameSeedDeterministic)
{
    const auto domain = SearchDomain::unionBenchmarks();
    ToyEvaluator toy1, toy2;
    AgingConfig ac;
    ac.populationSize = 12;
    ac.totalEvaluations = 80;
    ac.keep = 20;
    Rng rng1(28), rng2(28);
    const auto r1 = AgingEvolution(ac).run(domain, toy1, rng1);
    const auto r2 = AgingEvolution(ac).run(domain, toy2, rng2);
    ASSERT_EQ(r1.population.size(), r2.population.size());
    for (std::size_t i = 0; i < r1.population.size(); ++i)
        EXPECT_EQ(r1.population[i], r2.population[i]);
    EXPECT_EQ(r1.stats.evaluations, r2.stats.evaluations);
    EXPECT_EQ(r1.stats.generations, r2.stats.generations);
}

TEST(MemoizingEvaluatorTest, CachesRepeatEvaluations)
{
    int calls = 0;
    ParetoScoreEvaluator inner(
        "counted",
        [&calls](const std::vector<nasbench::Architecture> &archs) {
            calls += int(archs.size());
            std::vector<double> s;
            for (const auto &a : archs)
                s.push_back(double(a.genome[0]));
            return s;
        });
    MemoizingEvaluator memo(inner);

    Rng rng(41);
    const auto a = nasbench::nasBench201().sample(rng);
    const auto b = nasbench::nasBench201().sample(rng);
    const auto r1 = memo.evaluate({a, b});
    EXPECT_EQ(calls, 2);
    const auto r2 = memo.evaluate({a, b, a});
    EXPECT_EQ(calls, 2); // all cached
    EXPECT_EQ(r2[0], r1[0]);
    EXPECT_EQ(r2[2], r1[0]);
    EXPECT_EQ(memo.hits(), 3u);
    EXPECT_EQ(memo.uniqueEvaluations(), 2u);
}

TEST(MemoizingEvaluatorTest, ChargesOnlyMisses)
{
    ToyEvaluator toy;
    toy.costPerEval = 10.0;
    MemoizingEvaluator memo(toy);
    Rng rng(42);
    const auto a = nasbench::nasBench201().sample(rng);
    memo.evaluate({a});
    EXPECT_DOUBLE_EQ(memo.simulatedCostSeconds(1), 10.0);
    memo.evaluate({a});
    EXPECT_DOUBLE_EQ(memo.simulatedCostSeconds(1), 0.0);
}

TEST(MemoizingEvaluatorTest, SpeedsUpMoeaWithoutChangingResult)
{
    const auto domain = SearchDomain::single(nasbench::nasBench201());
    ToyEvaluator toy1, toy2;
    MemoizingEvaluator memo(toy2);
    MoeaConfig mc;
    mc.populationSize = 20;
    mc.maxGenerations = 10;
    mc.simulatedBudgetSeconds = 0.0;
    Rng rng1(43), rng2(43);
    const auto plain = Moea(mc).run(domain, toy1, rng1);
    const auto cached = Moea(mc).run(domain, memo, rng2);
    ASSERT_EQ(plain.population.size(), cached.population.size());
    for (std::size_t i = 0; i < plain.population.size(); ++i)
        EXPECT_EQ(plain.population[i], cached.population[i]);
    EXPECT_GT(memo.hits(), 0u);
}

/**
 * @file
 * Tests for the batched execution stack introduced with the unified
 * Surrogate interface: the thread pool's determinism contract, the
 * raw-matrix batched inference paths (MLP / LSTM / GCN / GBDT) against
 * their per-sample equivalents, every surrogate family behind
 * core::Surrogate, and thread-count invariance of a full MOEA search.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>

#include "baselines/brpnas.h"
#include "baselines/gates.h"
#include "baselines/lut.h"
#include "common/threadpool.h"
#include "core/hwprnas.h"
#include "core/scalable.h"
#include "core/surrogate.h"
#include "gbdt/gbdt.h"
#include "nn/gcn.h"
#include "nn/layers.h"
#include "nn/lstm.h"
#include "pareto/pareto.h"
#include "search/moea.h"

using namespace hwpr;

// ---------------------------------------------------------------------
// ThreadPool / ExecContext
// ---------------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    pool.parallelFor(0, hits.size(), 16,
                     [&](std::size_t b, std::size_t e) {
                         for (std::size_t i = b; i < e; ++i)
                             hits[i].fetch_add(1);
                     });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ChunkLayoutIndependentOfThreadCount)
{
    auto chunksOf = [](std::size_t threads) {
        ThreadPool pool(threads);
        std::mutex mu;
        std::vector<std::pair<std::size_t, std::size_t>> chunks;
        pool.parallelFor(3, 101, 10,
                         [&](std::size_t b, std::size_t e) {
                             std::lock_guard<std::mutex> lock(mu);
                             chunks.emplace_back(b, e);
                         });
        std::sort(chunks.begin(), chunks.end());
        return chunks;
    };
    // Any pool that actually fans out must produce the same chunk
    // list; a single-thread pool degenerates to one inline call over
    // the full range, which covers the same indices.
    const auto two = chunksOf(2);
    const auto four = chunksOf(4);
    ASSERT_EQ(two.size(), four.size());
    for (std::size_t i = 0; i < two.size(); ++i) {
        EXPECT_EQ(two[i].first, four[i].first);
        EXPECT_EQ(two[i].second, four[i].second);
    }
    const auto one = chunksOf(1);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0].first, 3u);
    EXPECT_EQ(one[0].second, 101u);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock)
{
    ThreadPool pool(4);
    std::atomic<int> total{0};
    pool.parallelFor(0, 8, 1, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
            // A pool task calling back into the pool must not wait on
            // its own queue; the inner range runs inline.
            pool.parallelFor(0, 4, 1,
                             [&](std::size_t ib, std::size_t ie) {
                                 total.fetch_add(int(ie - ib));
                             });
    });
    EXPECT_EQ(total.load(), 32);
}

TEST(ExecContextTest, GlobalThreadsOverride)
{
    const std::size_t before = ExecContext::global().threads();
    ExecContext::setGlobalThreads(3);
    EXPECT_EQ(ExecContext::global().threads(), 3u);
    EXPECT_NE(ExecContext::global().pool, nullptr);
    ExecContext::setGlobalThreads(before);
    EXPECT_EQ(ExecContext::global().threads(), before);
}

TEST(ExecContextTest, WithSeedKeepsPool)
{
    ExecContext &g = ExecContext::global();
    const ExecContext derived = g.withSeed(42);
    EXPECT_EQ(derived.pool, g.pool);
    EXPECT_EQ(derived.seed, 42u);
}

// ---------------------------------------------------------------------
// Batched raw inference vs per-sample / tensor paths
// ---------------------------------------------------------------------

namespace
{

/** Max |a - b| over two equally shaped matrices. */
double
maxAbsDiff(const Matrix &a, const Matrix &b)
{
    EXPECT_EQ(a.rows(), b.rows());
    EXPECT_EQ(a.cols(), b.cols());
    double m = 0.0;
    for (std::size_t i = 0; i < a.raw().size(); ++i)
        m = std::max(m, std::abs(a.raw()[i] - b.raw()[i]));
    return m;
}

} // namespace

TEST(BatchParity, MlpBatchedMatchesTensorAndSingleRows)
{
    Rng rng(21);
    nn::MlpConfig cfg;
    cfg.inDim = 6;
    cfg.hidden = {10, 7};
    cfg.outDim = 3;
    cfg.activation = nn::Activation::ReLU;
    nn::Mlp mlp(cfg, rng);

    Matrix x(33, 6);
    Rng data_rng(22);
    for (auto &v : x.raw())
        v = data_rng.uniform(-2, 2);

    const Matrix batched = mlp.predictBatch(x);
    const Matrix tensor = mlp.forward(nn::Tensor::constant(x)).value();
    EXPECT_LE(maxAbsDiff(batched, tensor), 0.0); // bit-for-bit

    for (std::size_t r = 0; r < x.rows(); ++r) {
        Matrix row(1, x.cols());
        for (std::size_t c = 0; c < x.cols(); ++c)
            row(0, c) = x(r, c);
        const Matrix single = mlp.predictBatch(row);
        for (std::size_t c = 0; c < batched.cols(); ++c)
            EXPECT_NEAR(single(0, c), batched(r, c), 1e-9);
    }
}

TEST(BatchParity, LstmEncodeBatchMatchesTensorAndSingles)
{
    Rng rng(23);
    nn::LstmConfig cfg;
    cfg.vocab = 9;
    cfg.embedDim = 8;
    cfg.hidden = 11;
    cfg.layers = 2;
    nn::LstmEncoder lstm(cfg, rng);

    Rng data_rng(24);
    std::vector<std::vector<std::size_t>> seqs(17);
    for (auto &s : seqs) {
        s.resize(6);
        for (auto &t : s)
            t = data_rng.index(cfg.vocab);
    }

    const Matrix batched = lstm.encodeBatch(seqs);
    const Matrix tensor = lstm.forward(seqs).value();
    EXPECT_LE(maxAbsDiff(batched, tensor), 0.0);

    for (std::size_t r = 0; r < seqs.size(); ++r) {
        const Matrix single = lstm.encodeBatch({seqs[r]});
        for (std::size_t c = 0; c < batched.cols(); ++c)
            EXPECT_NEAR(single(0, c), batched(r, c), 1e-9);
    }
}

namespace
{

nn::GraphInput
randomGraph(Rng &rng, std::size_t feat_dim)
{
    nn::GraphInput g;
    const std::size_t v = 3 + rng.index(4);
    Matrix raw(v, v);
    for (std::size_t i = 0; i + 1 < v; ++i)
        raw(i, i + 1) = raw(i + 1, i) = 1.0; // chain backbone
    if (v > 3 && rng.uniform() < 0.5)
        raw(0, v - 1) = raw(v - 1, 0) = 1.0;
    g.adjacency = nn::GcnEncoder::normalizeAdjacency(raw);
    g.features = Matrix(v, feat_dim);
    for (std::size_t i = 0; i < v; ++i)
        g.features(i, rng.index(feat_dim)) = 1.0;
    g.globalNode = v - 1;
    return g;
}

} // namespace

TEST(BatchParity, GcnEncodeBatchMatchesTensorAndSingles)
{
    Rng rng(25);
    nn::GcnConfig cfg;
    cfg.featDim = 5;
    cfg.hidden = 9;
    cfg.layers = 2;
    nn::GcnEncoder gcn(cfg, rng);

    Rng data_rng(26);
    std::vector<nn::GraphInput> graphs;
    for (int i = 0; i < 13; ++i)
        graphs.push_back(randomGraph(data_rng, cfg.featDim));

    const Matrix batched = gcn.encodeBatch(graphs);
    const Matrix tensor = gcn.forward(graphs).value();
    EXPECT_LE(maxAbsDiff(batched, tensor), 0.0);

    for (std::size_t r = 0; r < graphs.size(); ++r) {
        const Matrix single = gcn.encodeBatch({graphs[r]});
        for (std::size_t c = 0; c < batched.cols(); ++c)
            EXPECT_NEAR(single(0, c), batched(r, c), 1e-9);
    }
}

TEST(BatchParity, GcnMeanPoolEncodeBatchMatchesTensor)
{
    Rng rng(27);
    nn::GcnConfig cfg;
    cfg.featDim = 4;
    cfg.hidden = 6;
    cfg.layers = 1;
    cfg.useGlobalNode = false;
    nn::GcnEncoder gcn(cfg, rng);

    Rng data_rng(28);
    std::vector<nn::GraphInput> graphs;
    for (int i = 0; i < 5; ++i)
        graphs.push_back(randomGraph(data_rng, cfg.featDim));
    EXPECT_LE(maxAbsDiff(gcn.encodeBatch(graphs),
                         gcn.forward(graphs).value()),
              0.0);
}

TEST(BatchParity, GbdtPredictBatchMatchesRowsAtAnyThreadCount)
{
    Rng data_rng(29);
    Matrix x(120, 4);
    std::vector<double> y(120);
    for (std::size_t i = 0; i < x.rows(); ++i) {
        for (std::size_t c = 0; c < x.cols(); ++c)
            x(i, c) = data_rng.uniform(-1, 1);
        y[i] = x(i, 0) * 2.0 - x(i, 1) + 0.3 * x(i, 2) * x(i, 3);
    }
    gbdt::GbdtConfig cfg = gbdt::xgboostConfig();
    cfg.rounds = 30;
    gbdt::Gbdt model(cfg);
    Rng rng(30);
    model.fit(x, y, rng);

    const std::size_t before = ExecContext::global().threads();
    ExecContext::setGlobalThreads(1);
    const Matrix serial = model.predictBatch(x);
    ExecContext::setGlobalThreads(4);
    const Matrix parallel = model.predictBatch(x);
    ExecContext::setGlobalThreads(before);

    EXPECT_LE(maxAbsDiff(serial, parallel), 0.0);
    for (std::size_t r = 0; r < x.rows(); ++r)
        EXPECT_NEAR(serial(r, 0), model.predictRow(x, r), 1e-9);
}

// ---------------------------------------------------------------------
// Surrogate families behind the unified interface
// ---------------------------------------------------------------------

namespace
{

const nasbench::SampledDataset &
tinyData()
{
    static const nasbench::SampledDataset data = [] {
        static nasbench::Oracle oracle(nasbench::DatasetId::Cifar10);
        Rng rng(88);
        return nasbench::SampledDataset::sample(
            {&nasbench::nasBench201(), &nasbench::fbnet()}, oracle,
            300, 200, 50, rng);
    }();
    return data;
}

core::SurrogateDataset
tinySurrogateData(hw::PlatformId platform = hw::PlatformId::EdgeGpu)
{
    const auto &data = tinyData();
    core::SurrogateDataset d;
    d.train = data.select(data.trainIdx);
    d.val = data.select(data.valIdx);
    d.platform = platform;
    return d;
}

std::vector<nasbench::Architecture>
testArchs()
{
    const auto &data = tinyData();
    std::vector<nasbench::Architecture> out;
    for (const auto *r : data.select(data.testIdx))
        out.push_back(r->arch);
    return out;
}

core::EncoderConfig
tinyEncoder()
{
    core::EncoderConfig cfg;
    cfg.gcnHidden = 16;
    cfg.lstmHidden = 16;
    cfg.embedDim = 8;
    return cfg;
}

core::TrainConfig
quickFit()
{
    core::TrainConfig cfg;
    cfg.epochs = 6;
    cfg.combinerEpochs = 2;
    cfg.learningRate = 2e-3;
    return cfg;
}

/** Batch result vs the same surrogate queried one arch at a time. */
void
expectBatchSingleParity(const core::Surrogate &model,
                        const std::vector<nasbench::Architecture> &archs)
{
    if (model.evalKind() == search::EvalKind::ParetoScore) {
        const std::vector<double> batch = model.scoreBatch(archs);
        ASSERT_EQ(batch.size(), archs.size());
        for (std::size_t i = 0; i < archs.size(); ++i) {
            const auto one = model.scoreBatch(
                std::span<const nasbench::Architecture>(&archs[i], 1));
            EXPECT_NEAR(one[0], batch[i], 1e-9);
        }
    }
    const Matrix batch = model.objectivesBatch(archs);
    ASSERT_EQ(batch.rows(), archs.size());
    // Vector surrogates emit one column per objective; pure score
    // surrogates fall back to the default single -score column
    // (numObjectives() then counts the objectives the score ranks
    // over, not the emitted columns).
    if (model.evalKind() == search::EvalKind::ObjectiveVector)
        ASSERT_EQ(batch.cols(), model.numObjectives());
    for (std::size_t i = 0; i < archs.size(); ++i) {
        const Matrix one = model.objectivesBatch(
            std::span<const nasbench::Architecture>(&archs[i], 1));
        for (std::size_t c = 0; c < batch.cols(); ++c)
            EXPECT_NEAR(one(0, c), batch(i, c), 1e-9);
    }
}

/** Batch results at 1 thread vs 4 threads must be bit-identical. */
void
expectThreadCountInvariance(
    const core::Surrogate &model,
    const std::vector<nasbench::Architecture> &archs)
{
    const std::size_t before = ExecContext::global().threads();
    ExecContext::setGlobalThreads(1);
    const Matrix serial = model.objectivesBatch(archs);
    ExecContext::setGlobalThreads(4);
    const Matrix parallel = model.objectivesBatch(archs);
    ExecContext::setGlobalThreads(before);
    for (std::size_t i = 0; i < serial.raw().size(); ++i)
        EXPECT_DOUBLE_EQ(serial.raw()[i], parallel.raw()[i]);
}

} // namespace

TEST(SurrogateIface, HwPrNasFitScoreAndObjectives)
{
    core::HwPrNasConfig mc;
    mc.encoder = tinyEncoder();
    core::HwPrNas model(mc, nasbench::DatasetId::Cifar10, 1);
    model.setFitConfig(quickFit());
    ExecContext ctx = ExecContext::global().withSeed(7);
    model.fit(tinySurrogateData(), ctx);

    EXPECT_EQ(model.name(), "HW-PR-NAS");
    EXPECT_EQ(model.evalKind(), search::EvalKind::ParetoScore);
    EXPECT_EQ(model.numObjectives(), 2u);

    const auto archs = testArchs();
    expectBatchSingleParity(model, archs);
    expectThreadCountInvariance(model, archs);

    // Objectives carry physical units: error % in [0, 100] and a
    // positive latency.
    const Matrix obj = model.objectivesBatch(archs);
    for (std::size_t i = 0; i < obj.rows(); ++i) {
        EXPECT_GT(obj(i, 1), 0.0);
        EXPECT_LT(obj(i, 0), 100.0);
    }
}

TEST(SurrogateIface, HwPrNasFitSameSeedIsIdentical)
{
    const auto archs = testArchs();
    std::vector<double> runs[2];
    for (int k = 0; k < 2; ++k) {
        core::HwPrNasConfig mc;
        mc.encoder = tinyEncoder();
        core::HwPrNas model(mc, nasbench::DatasetId::Cifar10,
                            std::uint64_t(900 + k));
        model.setFitConfig(quickFit());
        ExecContext ctx = ExecContext::global().withSeed(7);
        model.fit(tinySurrogateData(), ctx);
        runs[k] = model.scoreBatch(archs);
    }
    // fit() reseeds from the context, so the constructor seeds (which
    // differ) must not matter: both models are the same model.
    for (std::size_t i = 0; i < runs[0].size(); ++i)
        EXPECT_DOUBLE_EQ(runs[0][i], runs[1][i]);
}

TEST(SurrogateIface, ScalableScoreBatchParity)
{
    core::ScalableConfig sc;
    sc.encoder = tinyEncoder();
    core::ScalableHwPrNas model(sc, nasbench::DatasetId::Cifar10, 2);
    model.setFitConfig(quickFit());
    ExecContext ctx = ExecContext::global().withSeed(9);
    model.fit(tinySurrogateData(), ctx);

    EXPECT_EQ(model.evalKind(), search::EvalKind::ParetoScore);
    EXPECT_EQ(model.numObjectives(), 2u); // acc + lat (no energy yet)
    const auto archs = testArchs();
    expectBatchSingleParity(model, archs);

    // No objectivesBatch override: the default is the negated score.
    const Matrix obj = model.objectivesBatch(archs);
    const auto scores = model.scoreBatch(archs);
    ASSERT_EQ(obj.cols(), 1u);
    for (std::size_t i = 0; i < archs.size(); ++i)
        EXPECT_DOUBLE_EQ(obj(i, 0), -scores[i]);
}

TEST(SurrogateIface, BrpNasObjectivesParity)
{
    const auto &data = tinyData();
    baselines::BrpNas model(tinyEncoder(),
                            nasbench::DatasetId::Cifar10, 3);
    core::PredictorTrainConfig cfg;
    cfg.epochs = 8;
    cfg.lr = 2e-3;
    model.train(data.select(data.trainIdx), data.select(data.valIdx),
                hw::PlatformId::EdgeGpu, cfg);

    const core::Surrogate &iface = model;
    EXPECT_EQ(iface.evalKind(), search::EvalKind::ObjectiveVector);
    EXPECT_EQ(iface.numObjectives(), 2u);
    const auto archs = testArchs();
    expectBatchSingleParity(iface, archs);

    // Column semantics: (100 - acc%, latency ms).
    const Matrix obj = iface.objectivesBatch(archs);
    const auto acc = model.predictAccuracy(archs);
    const auto lat = model.predictLatency(archs);
    for (std::size_t i = 0; i < archs.size(); ++i) {
        EXPECT_DOUBLE_EQ(obj(i, 0), 100.0 - acc[i]);
        EXPECT_DOUBLE_EQ(obj(i, 1), lat[i]);
    }
}

TEST(SurrogateIface, GatesObjectivesParity)
{
    const auto &data = tinyData();
    baselines::Gates model(tinyEncoder(),
                           nasbench::DatasetId::Cifar10, 4);
    core::PredictorTrainConfig cfg;
    cfg.epochs = 8;
    cfg.lr = 2e-3;
    model.train(data.select(data.trainIdx), data.select(data.valIdx),
                hw::PlatformId::EdgeGpu, cfg);

    const core::Surrogate &iface = model;
    const auto archs = testArchs();
    expectBatchSingleParity(iface, archs);

    // Column semantics: (-accuracy score, latency score).
    const Matrix obj = iface.objectivesBatch(archs);
    const auto acc = model.accuracyScores(archs);
    for (std::size_t i = 0; i < archs.size(); ++i)
        EXPECT_DOUBLE_EQ(obj(i, 0), -acc[i]);
}

TEST(SurrogateIface, LutFitAndObjectivesParity)
{
    baselines::LatencyLut lut(nasbench::DatasetId::Cifar10,
                              hw::PlatformId::EdgeGpu);
    ExecContext ctx = ExecContext::global().withSeed(0);
    core::Surrogate &iface = lut;
    iface.fit(tinySurrogateData(), ctx);
    EXPECT_GT(lut.numEntries(), 0u);
    EXPECT_EQ(iface.numObjectives(), 1u);

    const auto archs = testArchs();
    expectBatchSingleParity(iface, archs);
    const Matrix obj = iface.objectivesBatch(archs);
    for (std::size_t i = 0; i < archs.size(); ++i)
        EXPECT_DOUBLE_EQ(obj(i, 0), lut.estimateMs(archs[i]));
}

TEST(BatchPlanTest, EmptyBatchIsAWellDefinedNoOp)
{
    // The serving micro-batcher's deadline flush can fire with zero
    // queued rows; the plan must absorb that without touching the
    // pool or invoking the chunk body.
    core::BatchPlan plan;
    Matrix &out = plan.prepare(0, 3);
    EXPECT_EQ(out.rows(), 0u);
    EXPECT_EQ(out.cols(), 3u);
    EXPECT_EQ(plan.size(), 0u);
    std::atomic<int> calls{0};
    plan.forEachChunk("test", [&](nn::PredictScratch &, std::size_t,
                                  std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
    // Grain stays a pure function of n — no div-by-zero in the
    // ceil(n/16) math.
    EXPECT_EQ(core::BatchPlan::chunkGrain(0), 16u);
}

TEST(SurrogateIface, EmptyBatchNoOpAcrossAllFamilies)
{
    // Every family must treat an empty span as a no-op returning
    // empty results; the daemon's flush-on-deadline path legitimately
    // produces them. Untrained models suffice — zero rows never reach
    // the weights.
    core::HwPrNasConfig mc;
    mc.encoder = tinyEncoder();
    core::HwPrNas hwpr(mc, nasbench::DatasetId::Cifar10, 41);
    core::ScalableConfig sc;
    sc.encoder = tinyEncoder();
    core::ScalableHwPrNas scalable(sc, nasbench::DatasetId::Cifar10,
                                   42);
    baselines::BrpNas brp(tinyEncoder(), nasbench::DatasetId::Cifar10,
                          43);
    baselines::Gates gates(tinyEncoder(),
                           nasbench::DatasetId::Cifar10, 44);
    baselines::LatencyLut lut(nasbench::DatasetId::Cifar10,
                              hw::PlatformId::EdgeGpu);

    const std::vector<const core::Surrogate *> families = {
        &hwpr, &scalable, &brp, &gates, &lut};
    const std::span<const nasbench::Architecture> empty;
    for (const core::Surrogate *model : families) {
        SCOPED_TRACE(model->name());
        core::BatchPlan plan;
        const Matrix &pred = model->predictBatch(empty, plan);
        EXPECT_EQ(pred.rows(), 0u);
        EXPECT_GE(pred.cols(), 1u);
        core::BatchPlan rank_plan;
        const Matrix &ranked = model->rankBatch(empty, rank_plan);
        EXPECT_EQ(ranked.rows(), 0u);
        EXPECT_TRUE(model->scoreBatch(empty).empty());
        EXPECT_EQ(model->objectivesBatch(empty).rows(), 0u);
    }

    // The evaluator wrapper (the path search and serve actually
    // drive) returns an empty fitness set, trained or not.
    core::SurrogateEvaluator eval(hwpr);
    EXPECT_TRUE(eval.evaluate({}).empty());
}

TEST(SurrogateIface, DefaultSaveIsUnsupported)
{
    baselines::LatencyLut lut(nasbench::DatasetId::Cifar10,
                              hw::PlatformId::EdgeGpu);
    const core::Surrogate &iface = lut;
    EXPECT_FALSE(iface.save("/nonexistent/dir/file.bin"));
}

TEST(SurrogateIface, EvaluatorMatchesBatchMethods)
{
    core::ScalableConfig sc;
    sc.encoder = tinyEncoder();
    core::ScalableHwPrNas model(sc, nasbench::DatasetId::Cifar10, 5);
    model.setFitConfig(quickFit());
    ExecContext ctx = ExecContext::global().withSeed(11);
    model.fit(tinySurrogateData(), ctx);

    core::SurrogateEvaluator eval(model, 0.5);
    EXPECT_EQ(eval.kind(), search::EvalKind::ParetoScore);
    EXPECT_EQ(eval.numObjectives(), 1u);
    EXPECT_EQ(eval.name(), model.name());
    EXPECT_DOUBLE_EQ(eval.simulatedCostSeconds(10), 5.0);

    const auto archs = testArchs();
    const auto pts = eval.evaluate(archs);
    const auto scores = model.scoreBatch(archs);
    ASSERT_EQ(pts.size(), archs.size());
    for (std::size_t i = 0; i < archs.size(); ++i) {
        ASSERT_EQ(pts[i].size(), 1u);
        EXPECT_DOUBLE_EQ(pts[i][0], scores[i]);
    }
}

// ---------------------------------------------------------------------
// End-to-end determinism of the search
// ---------------------------------------------------------------------

TEST(Determinism, SearchIdenticalAcrossThreadCounts)
{
    core::HwPrNasConfig mc;
    mc.encoder = tinyEncoder();
    core::HwPrNas model(mc, nasbench::DatasetId::Cifar10, 6);
    model.setFitConfig(quickFit());
    ExecContext ctx = ExecContext::global().withSeed(13);
    model.fit(tinySurrogateData(), ctx);

    search::MoeaConfig smc;
    smc.populationSize = 16;
    smc.maxGenerations = 4;
    smc.simulatedBudgetSeconds = 0.0;

    const std::size_t before = ExecContext::global().threads();
    auto runSearch = [&] {
        core::SurrogateEvaluator eval(model);
        Rng rng(99);
        return search::Moea(smc).run(
            search::SearchDomain::unionBenchmarks(), eval, rng);
    };
    ExecContext::setGlobalThreads(1);
    const auto serial = runSearch();
    ExecContext::setGlobalThreads(4);
    const auto parallel = runSearch();
    ExecContext::setGlobalThreads(before);

    ASSERT_EQ(serial.population.size(), parallel.population.size());
    for (std::size_t i = 0; i < serial.population.size(); ++i) {
        EXPECT_TRUE(serial.population[i] == parallel.population[i]);
        ASSERT_EQ(serial.fitness[i].size(), parallel.fitness[i].size());
        for (std::size_t c = 0; c < serial.fitness[i].size(); ++c)
            EXPECT_DOUBLE_EQ(serial.fitness[i][c],
                             parallel.fitness[i][c]);
    }

    // Same-seed searches must agree on the hypervolume of the final
    // population's predicted objectives.
    auto hyper = [&](const search::SearchResult &r) {
        const Matrix obj = model.objectivesBatch(r.population);
        std::vector<pareto::Point> pts;
        for (std::size_t i = 0; i < obj.rows(); ++i)
            pts.push_back({obj(i, 0), obj(i, 1)});
        return pareto::hypervolume(pts, {100.0, 1e4});
    };
    EXPECT_DOUBLE_EQ(hyper(serial), hyper(parallel));
}

/**
 * @file
 * Baseline-surrogate tests: BRP-NAS and GATES train, predict with the
 * right semantics (signs/orders of objectives) and integrate with the
 * search as objective-vector evaluators.
 */

#include <gtest/gtest.h>

#include "baselines/brpnas.h"
#include "baselines/gates.h"
#include "baselines/lut.h"
#include "common/stats.h"
#include "search/moea.h"

using namespace hwpr;
using namespace hwpr::baselines;

namespace
{

const nasbench::SampledDataset &
tinyData()
{
    static const nasbench::SampledDataset data = [] {
        static nasbench::Oracle oracle(nasbench::DatasetId::Cifar10);
        Rng rng(77);
        return nasbench::SampledDataset::sample(
            {&nasbench::nasBench201(), &nasbench::fbnet()}, oracle,
            360, 240, 60, rng);
    }();
    return data;
}

core::EncoderConfig
tinyEncoder()
{
    core::EncoderConfig cfg;
    cfg.gcnHidden = 24;
    cfg.lstmHidden = 24;
    cfg.embedDim = 12;
    return cfg;
}

core::PredictorTrainConfig
quickTraining()
{
    core::PredictorTrainConfig cfg;
    // Tiny fixture dataset -> few optimizer steps per epoch; raise
    // the paper's lr and epoch count accordingly.
    cfg.epochs = 25;
    cfg.lr = 2e-3;
    return cfg;
}

std::vector<nasbench::Architecture>
archsOf(const std::vector<const nasbench::ArchRecord *> &recs)
{
    std::vector<nasbench::Architecture> out;
    for (const auto *r : recs)
        out.push_back(r->arch);
    return out;
}

} // namespace

TEST(BrpNasTest, PredictsBothObjectives)
{
    const auto &data = tinyData();
    BrpNas model(tinyEncoder(), nasbench::DatasetId::Cifar10, 1);
    model.train(data.select(data.trainIdx), data.select(data.valIdx),
                hw::PlatformId::EdgeGpu, quickTraining());

    const auto test = data.select(data.testIdx);
    std::vector<double> true_acc, true_lat;
    const std::size_t pidx =
        hw::platformIndex(hw::PlatformId::EdgeGpu);
    for (const auto *r : test) {
        true_acc.push_back(r->accuracy);
        true_lat.push_back(r->latencyMs[pidx]);
    }
    EXPECT_GT(kendallTau(model.predictAccuracy(archsOf(test)),
                         true_acc),
              0.3);
    EXPECT_GT(kendallTau(model.predictLatency(archsOf(test)),
                         true_lat),
              0.3);
}

TEST(BrpNasTest, EvaluatorMinimizationSemantics)
{
    const auto &data = tinyData();
    BrpNas model(tinyEncoder(), nasbench::DatasetId::Cifar10, 2);
    model.train(data.select(data.trainIdx), data.select(data.valIdx),
                hw::PlatformId::EdgeGpu, quickTraining());
    auto eval = model.evaluator();
    EXPECT_EQ(eval.kind(), search::EvalKind::ObjectiveVector);

    const auto test = data.select(data.testIdx);
    const auto archs = archsOf(test);
    const auto pts = eval.evaluate(archs);
    const auto acc = model.predictAccuracy(archs);
    for (std::size_t i = 0; i < archs.size(); ++i)
        EXPECT_DOUBLE_EQ(pts[i][0], 100.0 - acc[i]);
}

TEST(GatesTest, ScoresRankObjectives)
{
    const auto &data = tinyData();
    Gates model(tinyEncoder(), nasbench::DatasetId::Cifar10, 3);
    core::PredictorTrainConfig cfg = quickTraining();
    cfg.epochs = 20;
    model.train(data.select(data.trainIdx), data.select(data.valIdx),
                hw::PlatformId::Pixel3, cfg);

    const auto test = data.select(data.testIdx);
    std::vector<double> true_acc, true_lat;
    const std::size_t pidx = hw::platformIndex(hw::PlatformId::Pixel3);
    for (const auto *r : test) {
        true_acc.push_back(r->accuracy);
        true_lat.push_back(r->latencyMs[pidx]);
    }
    // Hinge-trained scores are rank-calibrated, not unit-calibrated.
    // Accuracy ranking across the union space is hard at this tiny
    // budget (FBNet accuracies live in a narrow band); the bar is
    // "clearly better than chance".
    EXPECT_GT(kendallTau(model.accuracyScores(archsOf(test)),
                         true_acc),
              0.2);
    EXPECT_GT(kendallTau(model.latencyScores(archsOf(test)),
                         true_lat),
              0.3);
}

TEST(GatesTest, SearchIntegration)
{
    const auto &data = tinyData();
    Gates model(tinyEncoder(), nasbench::DatasetId::Cifar10, 4);
    core::PredictorTrainConfig cfg = quickTraining();
    cfg.epochs = 6;
    model.train(data.select(data.trainIdx), data.select(data.valIdx),
                hw::PlatformId::EdgeGpu, cfg);
    auto eval = model.evaluator();

    search::MoeaConfig mc;
    mc.populationSize = 12;
    mc.maxGenerations = 3;
    mc.simulatedBudgetSeconds = 0.0;
    Rng rng(5);
    const auto result = search::Moea(mc).run(
        search::SearchDomain::unionBenchmarks(), eval, rng);
    EXPECT_EQ(result.population.size(), 12u);
    EXPECT_EQ(result.fitness[0].size(), 2u);
}

TEST(LatencyLutTest, OverestimatesOverlappedExecution)
{
    // The LUT sums isolated op latencies; the device overlaps
    // adjacent compute/memory phases, so the LUT must never
    // underestimate, and must strictly overestimate on platforms
    // with nonzero overlap.
    nasbench::Oracle oracle(nasbench::DatasetId::Cifar10);
    LatencyLut lut(nasbench::DatasetId::Cifar10,
                   hw::PlatformId::Eyeriss);
    Rng rng(31);
    int strictly_over = 0;
    for (int i = 0; i < 30; ++i) {
        const auto a = nasbench::nasBench201().sample(rng);
        const double est = lut.estimateMs(a);
        const double real =
            oracle.latencyMs(a, hw::PlatformId::Eyeriss);
        EXPECT_GE(est, real - 1e-9);
        if (est > real * 1.02)
            ++strictly_over;
    }
    EXPECT_GT(strictly_over, 10);
    EXPECT_GT(lut.numEntries(), 0u);
}

TEST(LatencyLutTest, BuildPrePopulatesEntries)
{
    LatencyLut lut(nasbench::DatasetId::Cifar10,
                   hw::PlatformId::EdgeGpu);
    Rng rng(32);
    std::vector<nasbench::Architecture> calib;
    for (int i = 0; i < 10; ++i)
        calib.push_back(nasbench::fbnet().sample(rng));
    lut.build(calib);
    const std::size_t entries = lut.numEntries();
    EXPECT_GT(entries, 10u);
    // Estimating the same archs adds no entries.
    lut.estimate(calib);
    EXPECT_EQ(lut.numEntries(), entries);
}

TEST(LatencyLutTest, RanksWellButBelowPerfect)
{
    // Informative (FLOPs-correlated) but imperfect due to the missed
    // cross-op overlap.
    nasbench::Oracle oracle(nasbench::DatasetId::Cifar10);
    LatencyLut lut(nasbench::DatasetId::Cifar10,
                   hw::PlatformId::FpgaZCU102);
    Rng rng(33);
    std::vector<double> est, real;
    for (int i = 0; i < 150; ++i) {
        const auto a = nasbench::nasBench201().sample(rng);
        est.push_back(lut.estimateMs(a));
        real.push_back(
            oracle.latencyMs(a, hw::PlatformId::FpgaZCU102));
    }
    const double tau = kendallTau(est, real);
    EXPECT_GT(tau, 0.6);
    EXPECT_LT(tau, 0.99);
}

/**
 * @file
 * End-to-end integration tests: the full pipeline the examples and
 * benches exercise — oracle -> sampled dataset -> surrogate training
 * -> surrogate-guided search -> measured front — plus cross-component
 * combinations (memoized surrogate inside aging evolution, checkpoint
 * hand-off between training and search).
 */

#include <gtest/gtest.h>

#include "baselines/brpnas.h"
#include "common/stats.h"
#include "core/hwprnas.h"
#include "pareto/pareto.h"
#include "search/aging.h"
#include "search/moea.h"
#include "search/report.h"
#include "search/surrogate_evaluator.h"

using namespace hwpr;

namespace
{

struct Pipeline
{
    nasbench::Oracle oracle{nasbench::DatasetId::Cifar10};
    nasbench::SampledDataset data;
    std::unique_ptr<core::HwPrNas> model;

    Pipeline()
    {
        Rng rng(90210);
        data = nasbench::SampledDataset::sample(
            {&nasbench::nasBench201(), &nasbench::fbnet()}, oracle,
            420, 280, 70, rng);
        core::HwPrNasConfig mc;
        mc.encoder.gcnHidden = 24;
        mc.encoder.lstmHidden = 24;
        mc.encoder.embedDim = 12;
        model = std::make_unique<core::HwPrNas>(
            mc, nasbench::DatasetId::Cifar10, 7);
        core::TrainConfig tc;
        tc.epochs = 20;
        tc.learningRate = 2e-3;
        model->train(data.select(data.trainIdx),
                     data.select(data.valIdx),
                     hw::PlatformId::EdgeGpu, tc);
    }
};

/** One shared pipeline for the whole file (training is the cost). */
Pipeline &
pipeline()
{
    static Pipeline p;
    return p;
}

} // namespace

TEST(Integration, SurrogateGuidedSearchBeatsRandomSelection)
{
    auto &p = pipeline();
    search::ParetoScoreEvaluator eval(
        "HW-PR-NAS",
        [&p](const std::vector<nasbench::Architecture> &archs) {
            return p.model->scores(archs);
        });

    search::MoeaConfig mc;
    mc.populationSize = 40;
    mc.maxGenerations = 15;
    mc.simulatedBudgetSeconds = 0.0;
    Rng rng(1);
    const auto guided = search::Moea(mc).run(
        search::SearchDomain::unionBenchmarks(), eval, rng);
    const auto guided_front = search::measureFront(
        guided, p.oracle, hw::PlatformId::EdgeGpu);

    // Random baseline with the same evaluation budget, selected at
    // random rather than by score.
    Rng rng2(1);
    std::vector<nasbench::Architecture> random_pop;
    const auto domain = search::SearchDomain::unionBenchmarks();
    for (std::size_t i = 0; i < mc.populationSize; ++i)
        random_pop.push_back(domain.sample(rng2));
    search::SearchResult random_result;
    random_result.population = random_pop;
    const auto random_front = search::measureFront(
        random_result, p.oracle, hw::PlatformId::EdgeGpu);

    // Shared reference over both clouds.
    std::vector<pareto::Point> all = guided_front.objectives;
    all.insert(all.end(), random_front.objectives.begin(),
               random_front.objectives.end());
    const auto ref = pareto::nadirReference(all, 0.1);
    const double hv_guided =
        pareto::hypervolume(guided_front.front, ref);
    const double hv_random =
        pareto::hypervolume(random_front.front, ref);
    // At this tiny training budget the surrogate is weak; the claim
    // is "competitive with random selection", not strict dominance
    // (the full-budget comparison lives in bench_table3).
    EXPECT_GT(hv_guided, hv_random * 0.75);
}

TEST(Integration, MemoizedSurrogateInsideAgingEvolution)
{
    auto &p = pipeline();
    search::ParetoScoreEvaluator inner(
        "HW-PR-NAS",
        [&p](const std::vector<nasbench::Architecture> &archs) {
            return p.model->scores(archs);
        });
    search::MemoizingEvaluator memo(inner);

    search::AgingConfig ac;
    ac.populationSize = 20;
    ac.totalEvaluations = 120;
    ac.keep = 20;
    Rng rng(2);
    const auto result = search::AgingEvolution(ac).run(
        search::SearchDomain::unionBenchmarks(), memo, rng);
    EXPECT_EQ(result.population.size(), 20u);
    EXPECT_EQ(memo.uniqueEvaluations() + memo.hits(), 120u);

    // Scores in the kept set are sorted descending (top-k contract).
    for (std::size_t i = 1; i < result.fitness.size(); ++i)
        EXPECT_GE(result.fitness[i - 1][0], result.fitness[i][0]);
}

TEST(Integration, CheckpointHandoffPreservesSearchOutcome)
{
    auto &p = pipeline();
    const std::string path = "/tmp/hwpr_integration_ckpt.bin";
    ASSERT_TRUE(p.model->save(path));
    const auto loaded = core::HwPrNas::load(path);
    ASSERT_NE(loaded, nullptr);

    auto run_with = [](const core::HwPrNas &model) {
        search::ParetoScoreEvaluator eval(
            "HW-PR-NAS",
            [&model](const std::vector<nasbench::Architecture> &a) {
                return model.scores(a);
            });
        search::MoeaConfig mc;
        mc.populationSize = 16;
        mc.maxGenerations = 5;
        mc.simulatedBudgetSeconds = 0.0;
        Rng rng(3);
        return search::Moea(mc).run(
            search::SearchDomain::unionBenchmarks(), eval, rng);
    };
    const auto a = run_with(*p.model);
    const auto b = run_with(*loaded);
    ASSERT_EQ(a.population.size(), b.population.size());
    for (std::size_t i = 0; i < a.population.size(); ++i)
        EXPECT_EQ(a.population[i], b.population[i]);
}

TEST(Integration, TwoSurrogatePipelineAgreesOnUnits)
{
    auto &p = pipeline();
    baselines::BrpNas brp(core::EncoderConfig{
                              .gcnHidden = 24,
                              .gcnLayers = 2,
                              .lstmHidden = 24,
                              .lstmLayers = 2,
                              .embedDim = 12,
                          },
                          nasbench::DatasetId::Cifar10, 11);
    core::PredictorTrainConfig cfg;
    cfg.epochs = 15;
    cfg.lr = 2e-3;
    brp.train(p.data.select(p.data.trainIdx),
              p.data.select(p.data.valIdx), hw::PlatformId::EdgeGpu,
              cfg);

    // Predictions are in physical units comparable with the oracle.
    const auto test = p.data.select(p.data.testIdx);
    std::vector<nasbench::Architecture> archs;
    std::vector<double> true_lat;
    for (const auto *rec : test) {
        archs.push_back(rec->arch);
        true_lat.push_back(
            rec->latencyMs[hw::platformIndex(hw::PlatformId::EdgeGpu)]);
    }
    const auto pred = brp.predictLatency(archs);
    const double ratio = mean(pred) / mean(true_lat);
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 2.0);
}

TEST(Integration, OracleConsistentAcrossInstances)
{
    // Two independent oracles agree on every measurement
    // (determinism of the full substrate stack).
    nasbench::Oracle a(nasbench::DatasetId::Cifar100);
    nasbench::Oracle b(nasbench::DatasetId::Cifar100);
    Rng rng(4);
    for (int i = 0; i < 20; ++i) {
        const auto arch = nasbench::fbnet().sample(rng);
        const auto &ra = a.record(arch);
        const auto &rb = b.record(arch);
        EXPECT_DOUBLE_EQ(ra.accuracy, rb.accuracy);
        for (std::size_t pi = 0; pi < hw::kNumPlatforms; ++pi) {
            EXPECT_DOUBLE_EQ(ra.latencyMs[pi], rb.latencyMs[pi]);
            EXPECT_DOUBLE_EQ(ra.energyMj[pi], rb.energyMj[pi]);
        }
    }
}

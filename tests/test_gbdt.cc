/**
 * @file
 * Gradient-boosted tree tests: both growth policies fit simple
 * functions, early stopping works, and the split machinery respects
 * its constraints.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "gbdt/gbdt.h"

using namespace hwpr;
using namespace hwpr::gbdt;

namespace
{

/** y = f(x) dataset on a grid plus noise-free targets. */
void
makeDataset(std::size_t n, const std::function<double(double, double)> &f,
            Matrix &x, std::vector<double> &y, std::uint64_t seed)
{
    Rng rng(seed);
    x = Matrix(n, 2);
    y.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        x(i, 0) = rng.uniform(-2, 2);
        x(i, 1) = rng.uniform(-2, 2);
        y[i] = f(x(i, 0), x(i, 1));
    }
}

} // namespace

TEST(RegressionTree, SingleSplitRecoversStepFunction)
{
    Matrix x(100, 1);
    std::vector<double> grad(100), hess(100, 1.0);
    std::vector<std::size_t> rows(100);
    for (std::size_t i = 0; i < 100; ++i) {
        x(i, 0) = double(i);
        // Squared loss towards a step: grad = pred - y with pred = 0.
        grad[i] = i < 50 ? -1.0 : -5.0;
        rows[i] = i;
    }
    TreeConfig cfg;
    cfg.maxDepth = 1;
    cfg.lambda = 0.0;
    RegressionTree tree;
    tree.fit(x, grad, hess, rows, cfg);
    EXPECT_EQ(tree.numLeaves(), 2u);
    EXPECT_NEAR(tree.predictRow(x, 10), 1.0, 1e-9);
    EXPECT_NEAR(tree.predictRow(x, 90), 5.0, 1e-9);
}

TEST(RegressionTree, RespectsMinSamplesLeaf)
{
    Matrix x(10, 1);
    std::vector<double> grad(10), hess(10, 1.0);
    std::vector<std::size_t> rows(10);
    for (std::size_t i = 0; i < 10; ++i) {
        x(i, 0) = double(i);
        grad[i] = i == 0 ? -100.0 : 0.0; // outlier tempts a 1-row leaf
        rows[i] = i;
    }
    TreeConfig cfg;
    cfg.maxDepth = 3;
    cfg.minSamplesLeaf = 4;
    RegressionTree tree;
    tree.fit(x, grad, hess, rows, cfg);
    // No split may isolate fewer than 4 rows; with 10 rows that means
    // at most depth-1 splits at positions 4/5/6.
    EXPECT_LE(tree.numLeaves(), 2u);
}

class GbdtFitTest : public ::testing::TestWithParam<Growth>
{
};

TEST_P(GbdtFitTest, FitsAdditiveFunction)
{
    Matrix x;
    std::vector<double> y;
    makeDataset(400, [](double a, double b) { return 3 * a - 2 * b; },
                x, y, 1);
    GbdtConfig cfg = GetParam() == Growth::LevelWise
                         ? xgboostConfig()
                         : lgboostConfig();
    cfg.rounds = 150;
    Gbdt model(cfg);
    Rng rng(2);
    model.fit(x, y, rng);
    const double err = rmse(model.predict(x), y);
    EXPECT_LT(err, 0.5);
}

TEST_P(GbdtFitTest, FitsInteraction)
{
    Matrix x;
    std::vector<double> y;
    makeDataset(500, [](double a, double b) { return a * b; }, x, y, 3);
    GbdtConfig cfg = GetParam() == Growth::LevelWise
                         ? xgboostConfig()
                         : lgboostConfig();
    cfg.rounds = 200;
    Gbdt model(cfg);
    Rng rng(4);
    model.fit(x, y, rng);
    const double err = rmse(model.predict(x), y);
    EXPECT_LT(err, 0.6);
    // Ranking quality matters more than absolute fit for NAS use.
    EXPECT_GT(kendallTau(model.predict(x), y), 0.85);
}

INSTANTIATE_TEST_SUITE_P(Growths, GbdtFitTest,
                         ::testing::Values(Growth::LevelWise,
                                           Growth::LeafWise));

TEST(Gbdt, ConstantTargetGivesConstantPrediction)
{
    Matrix x(50, 2);
    Rng rng(5);
    for (double &v : x.raw())
        v = rng.uniform();
    std::vector<double> y(50, 7.5);
    Gbdt model(xgboostConfig());
    model.fit(x, y, rng);
    for (double p : model.predict(x))
        EXPECT_NEAR(p, 7.5, 1e-9);
    // Nothing to learn: no trees beyond the base score are needed.
    EXPECT_EQ(model.numTrees(), 0u);
}

TEST(Gbdt, EarlyStoppingTruncatesEnsemble)
{
    Matrix x, xv;
    std::vector<double> y, yv;
    makeDataset(200, [](double a, double) { return a; }, x, y, 6);
    makeDataset(100, [](double a, double) { return a; }, xv, yv, 7);
    GbdtConfig cfg = xgboostConfig();
    cfg.rounds = 400;
    cfg.earlyStopRounds = 5;
    Gbdt model(cfg);
    Rng rng(8);
    model.fit(x, y, rng, &xv, &yv);
    EXPECT_LT(model.numTrees(), 400u);
    EXPECT_LT(rmse(model.predict(xv), yv), 0.3);
}

TEST(Gbdt, LeafWiseRespectsLeafBudget)
{
    Matrix x;
    std::vector<double> y;
    makeDataset(300, [](double a, double b) { return a * a + b; }, x,
                y, 9);
    GbdtConfig cfg = lgboostConfig();
    cfg.tree.maxLeaves = 4;
    cfg.rounds = 5;
    Gbdt model(cfg);
    Rng rng(10);
    model.fit(x, y, rng);
    EXPECT_GT(model.numTrees(), 0u);
    // predictRow just must not crash and be finite.
    for (std::size_t i = 0; i < x.rows(); ++i)
        EXPECT_TRUE(std::isfinite(model.predictRow(x, i)));
}

TEST(Gbdt, SubsamplingStillLearns)
{
    Matrix x;
    std::vector<double> y;
    makeDataset(400, [](double a, double b) { return a + b; }, x, y,
                11);
    GbdtConfig cfg = xgboostConfig();
    cfg.subsample = 0.5;
    Gbdt model(cfg);
    Rng rng(12);
    model.fit(x, y, rng);
    EXPECT_GT(kendallTau(model.predict(x), y), 0.9);
}

/**
 * @file
 * Extended hardware-model coverage, parameterized over all seven
 * platforms: cost monotonicities, overlap semantics, energy
 * accounting, and the lowering invariants both search spaces must
 * satisfy on every device.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/lut.h"
#include "hw/cost_model.h"
#include "nasbench/dataset.h"
#include "nasbench/space.h"

using namespace hwpr;
using namespace hwpr::hw;

class PerPlatformTest : public ::testing::TestWithParam<PlatformId>
{
  protected:
    CostModel model() const { return costModelFor(GetParam()); }
};

TEST_P(PerPlatformTest, LatencyMonotoneInSpatialSize)
{
    const CostModel m = model();
    double prev = 0.0;
    for (int s : {8, 16, 32, 64}) {
        OpWorkload op{OpKind::Conv, s, s, 32, 32, 3, 1, 1};
        const double t = m.opCost(op).latencySec;
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST_P(PerPlatformTest, EnergyStrictlyPositiveForRealOps)
{
    const CostModel m = model();
    for (OpKind kind : {OpKind::Conv, OpKind::AvgPool, OpKind::Add,
                        OpKind::Linear, OpKind::GlobalAvgPool}) {
        OpWorkload op{kind, 8, 8, 16, 16, 3, 1, 1};
        EXPECT_GT(m.opCost(op).energyJ, 0.0)
            << opKindName(kind) << " on "
            << platformName(GetParam());
    }
}

TEST_P(PerPlatformTest, OverlapNeverIncreasesLatency)
{
    // End-to-end latency with overlap must be <= the sum of isolated
    // op latencies plus base latency, and > 0.
    const CostModel m = model();
    std::vector<OpWorkload> net = {
        {OpKind::Conv, 16, 16, 32, 32, 3, 1, 1},
        {OpKind::AvgPool, 16, 16, 32, 32, 3, 1, 1},
        {OpKind::Conv, 16, 16, 32, 32, 1, 1, 1},
        {OpKind::Add, 16, 16, 32, 32, 1, 1, 1},
    };
    double isolated = m.spec().baseLatencySec;
    for (const auto &op : net)
        isolated += m.opCost(op).latencySec;
    const double pipelined = m.networkCost(net).latencySec;
    EXPECT_LE(pipelined, isolated + 1e-15);
    EXPECT_GT(pipelined, 0.0);
}

TEST_P(PerPlatformTest, LutNeverUnderestimates)
{
    nasbench::Oracle oracle(nasbench::DatasetId::Cifar10);
    baselines::LatencyLut lut(nasbench::DatasetId::Cifar10,
                              GetParam());
    Rng rng(17);
    for (int i = 0; i < 10; ++i) {
        const auto a = i % 2 ? nasbench::fbnet().sample(rng)
                             : nasbench::nasBench201().sample(rng);
        EXPECT_GE(lut.estimateMs(a),
                  oracle.latencyMs(a, GetParam()) - 1e-9);
    }
}

TEST_P(PerPlatformTest, LoweredNetworksHaveFiniteCosts)
{
    const CostModel m = model();
    Rng rng(18);
    for (int i = 0; i < 5; ++i) {
        for (const auto *space :
             {&nasbench::nasBench201(), &nasbench::fbnet()}) {
            const auto net = space->lower(
                space->sample(rng), nasbench::DatasetId::ImageNet16);
            const auto cost = m.networkCost(net);
            EXPECT_TRUE(std::isfinite(cost.latencySec));
            EXPECT_TRUE(std::isfinite(cost.energyJ));
            EXPECT_GT(cost.latencySec, 0.0);
        }
    }
}

TEST_P(PerPlatformTest, MoreClassesCostNoLess)
{
    // ImageNet16-120's 120-way classifier must not be cheaper than
    // CIFAR-10's 10-way one at the same architecture (all else being
    // smaller spatially, only compare the classifier op itself).
    const CostModel m = model();
    OpWorkload fc10{OpKind::Linear, 1, 1, 64, 10, 1, 1, 1};
    OpWorkload fc120{OpKind::Linear, 1, 1, 64, 120, 1, 1, 1};
    EXPECT_GE(m.opCost(fc120).latencySec,
              m.opCost(fc10).latencySec - 1e-15);
}

INSTANTIATE_TEST_SUITE_P(
    AllPlatforms, PerPlatformTest,
    ::testing::ValuesIn(allPlatforms()),
    [](const ::testing::TestParamInfo<PlatformId> &info) {
        std::string name = platformName(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(OverlapSemantics, AlternatingBoundednessGetsDiscount)
{
    // Construct one compute-bound and one memory-bound op on the
    // EdgeGPU and verify the pipelined latency is strictly below the
    // isolated sum (overlapEff > 0 on that platform).
    const CostModel m = costModelFor(PlatformId::EdgeGpu);
    OpWorkload compute{OpKind::Conv, 32, 32, 256, 256, 3, 1, 1};
    OpWorkload memory{OpKind::AvgPool, 32, 32, 256, 256, 3, 1, 1};
    const auto c = m.opCost(compute);
    const auto mm = m.opCost(memory);
    ASSERT_GT(c.computeSec, c.memorySec);
    ASSERT_GT(mm.memorySec, mm.computeSec);
    const double isolated =
        c.latencySec + mm.latencySec + m.spec().baseLatencySec;
    const double pipelined =
        m.networkCost({compute, memory}).latencySec;
    EXPECT_LT(pipelined, isolated - 1e-9);
}

TEST(OverlapSemantics, SameBoundednessNoDiscount)
{
    const CostModel m = costModelFor(PlatformId::EdgeGpu);
    OpWorkload compute{OpKind::Conv, 32, 32, 256, 256, 3, 1, 1};
    const auto c = m.opCost(compute);
    const double isolated =
        2.0 * c.latencySec + m.spec().baseLatencySec;
    const double pipelined =
        m.networkCost({compute, compute}).latencySec;
    EXPECT_NEAR(pipelined, isolated, 1e-12);
}

TEST(DepthwisePenalty, OverheadFactorAppliesOnlyWhereConfigured)
{
    OpWorkload dw{OpKind::Conv, 8, 8, 64, 64, 3, 1, 64};
    OpWorkload dense{OpKind::Conv, 8, 8, 64, 64, 3, 1, 1};
    for (PlatformId p : allPlatforms()) {
        const PlatformSpec &spec = platformSpec(p);
        const CostModel m = costModelFor(p);
        const double dw_lat = m.opCost(dw).latencySec;
        if (spec.dwOverheadFactor > 1.0) {
            // The dw op carries at least the inflated overhead.
            EXPECT_GE(dw_lat,
                      spec.opOverheadSec * spec.dwOverheadFactor)
                << platformName(p);
        } else {
            EXPECT_GE(dw_lat, spec.opOverheadSec);
        }
        // Dense op carries exactly the base overhead floor.
        EXPECT_GE(m.opCost(dense).latencySec, spec.opOverheadSec);
    }
}

TEST(EnergyAccounting, NetworkEnergyIsSumPlusIdle)
{
    const CostModel m = costModelFor(PlatformId::RaspberryPi4);
    std::vector<OpWorkload> net = {
        {OpKind::Conv, 16, 16, 16, 16, 3, 1, 1},
        {OpKind::Conv, 16, 16, 16, 16, 1, 1, 1},
    };
    double op_energy = 0.0;
    for (const auto &op : net)
        op_energy += m.opCost(op).energyJ;
    const double expected =
        op_energy + m.spec().baseLatencySec * m.spec().idlePowerW;
    EXPECT_NEAR(m.networkCost(net).energyJ, expected, 1e-15);
}

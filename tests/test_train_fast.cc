/**
 * @file
 * Training fast-path tests: the tiled GEMM kernels must match the
 * naive reference kernels on arbitrary (including odd and packed)
 * shapes, gradients must stay correct through the tiled kernels with
 * a GraphArena active, and a same-seed fit() must be bit-identical
 * with the fast paths (arena + encoding cache) on vs off.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "core/hwprnas.h"
#include "core/train_util.h"
#include "nn/gradcheck.h"
#include "nn/tensor.h"

using namespace hwpr;
using namespace hwpr::nn;

namespace
{

Matrix
randomMatrix(std::size_t r, std::size_t c, Rng &rng)
{
    Matrix m(r, c);
    for (double &v : m.raw())
        v = rng.normal(0.0, 1.0);
    return m;
}

double
maxAbsDiff(const Matrix &a, const Matrix &b)
{
    EXPECT_EQ(a.rows(), b.rows());
    EXPECT_EQ(a.cols(), b.cols());
    double worst = 0.0;
    for (std::size_t i = 0; i < a.raw().size(); ++i)
        worst = std::max(worst, std::abs(a.raw()[i] - b.raw()[i]));
    return worst;
}

/** RAII toggle for the process-wide fast-path flag. */
class FastPathGuard
{
  public:
    explicit FastPathGuard(bool enabled)
        : saved_(core::trainFastPath())
    {
        core::setTrainFastPath(enabled);
    }
    ~FastPathGuard() { core::setTrainFastPath(saved_); }

  private:
    bool saved_;
};

} // namespace

TEST(TiledGemm, MatchesNaiveOnArbitraryShapes)
{
    // (m, k, n) triples: tiny, odd, prime, below/above the kMr x kNr
    // register-tile boundaries, and large enough for the parallel
    // row-partitioned path.
    const std::size_t shapes[][3] = {
        {1, 1, 1},   {2, 3, 1},   {5, 7, 3},   {4, 8, 8},
        {17, 9, 1},  {13, 31, 29}, {33, 5, 2}, {40, 64, 72},
        {64, 64, 256},
    };
    Rng rng(42);
    for (const auto &s : shapes) {
        const Matrix a = randomMatrix(s[0], s[1], rng);
        const Matrix b = randomMatrix(s[1], s[2], rng);
        const Matrix at = randomMatrix(s[1], s[0], rng);
        const Matrix bt = randomMatrix(s[2], s[1], rng);

        EXPECT_LE(maxAbsDiff(a.matmul(b), a.matmulNaive(b)), 1e-12)
            << "AB " << s[0] << "x" << s[1] << "x" << s[2];
        EXPECT_LE(maxAbsDiff(at.transposedMatmul(b),
                             at.transposedMatmulNaive(b)),
                  1e-12)
            << "AtB " << s[0] << "x" << s[1] << "x" << s[2];
        EXPECT_LE(maxAbsDiff(a.matmulTransposed(bt),
                             a.matmulTransposedNaive(bt)),
                  1e-12)
            << "ABt " << s[0] << "x" << s[1] << "x" << s[2];
    }
}

TEST(TiledGemm, PackedAbtMatchesNaive)
{
    // A (m x kk) * B (n x kk)^T packs B^T when kk * n is large
    // enough; cover the packed path with both aligned and ragged
    // tile shapes.
    const std::size_t shapes[][3] = {
        {64, 128, 64},  // kk * n = 8192: aligned tiles, packed
        {37, 130, 33},  // kk * n = 4290: ragged edge tiles, packed
        {8, 4096, 3},   // long-k, narrow output, packed
    };
    Rng rng(7);
    for (const auto &s : shapes) {
        const Matrix a = randomMatrix(s[0], s[1], rng);
        const Matrix b = randomMatrix(s[2], s[1], rng);
        EXPECT_LE(maxAbsDiff(a.matmulTransposed(b),
                             a.matmulTransposedNaive(b)),
                  1e-12)
            << "packed ABt " << s[0] << "x" << s[1] << "x" << s[2];
    }
}

TEST(TiledGemm, AccumulateAddsToExistingContents)
{
    Rng rng(11);
    const Matrix a = randomMatrix(21, 17, rng);
    const Matrix b = randomMatrix(17, 13, rng);
    const Matrix bt = randomMatrix(13, 17, rng);
    const Matrix init = randomMatrix(21, 13, rng);

    Matrix out = init;
    a.matmulInto(b, out, /*accumulate=*/true);
    EXPECT_LE(maxAbsDiff(out, init + a.matmulNaive(b)), 1e-12);

    out = init;
    a.matmulTransposedInto(bt, out, /*accumulate=*/true);
    EXPECT_LE(maxAbsDiff(out, init + a.matmulTransposedNaive(bt)),
              1e-12);

    Matrix out2 = randomMatrix(17, 13, rng);
    const Matrix init2 = out2;
    a.transposedMatmulInto(init, out2, /*accumulate=*/true);
    EXPECT_LE(maxAbsDiff(out2, init2 + a.transposedMatmulNaive(init)),
              1e-12);
}

TEST(TrainFastPath, GradCheckThroughTiledKernelsWithArena)
{
    // A two-layer network whose forward and backward both route
    // through the tiled matmul kernels, gradchecked while a
    // GraphArena is active (nodes and buffers drawn from the pool).
    Rng rng(19);
    Tensor x = Tensor::constant(randomMatrix(6, 16, rng), "x");
    Tensor w1 = Tensor::param(randomMatrix(16, 24, rng), "w1");
    Tensor b1 = Tensor::param(randomMatrix(1, 24, rng), "b1");
    Tensor w2 = Tensor::param(randomMatrix(24, 1, rng), "w2");

    const auto build = [&] {
        const Tensor h =
            tanhT(addRowBroadcast(matmul(x, w1), b1));
        return meanAll(sigmoid(matmul(h, w2)));
    };

    GraphArena arena;
    GraphArena::Scope scope(arena);
    for (Tensor leaf : {w1, b1, w2}) {
        const double err = gradCheck(build, leaf, 1e-6);
        EXPECT_LT(err, 1e-6) << "leaf " << leaf.name();
    }
    EXPECT_GT(arena.liveNodes(), 0u);
}

TEST(TrainFastPath, SameSeedFitIdenticalFastVsSlow)
{
    // The arena and the encoding cache are pure reuse: with the fast
    // paths off, a same-seed fit must produce the exact same loss
    // trajectory and scores, bit for bit.
    static nasbench::Oracle oracle(nasbench::DatasetId::Cifar10);
    Rng rng(1234);
    const auto data = nasbench::SampledDataset::sample(
        {&nasbench::nasBench201(), &nasbench::fbnet()}, oracle, 200,
        140, 40, rng);

    core::HwPrNasConfig mc;
    mc.encoder.gcnHidden = 24;
    mc.encoder.lstmHidden = 24;
    mc.encoder.embedDim = 12;

    core::TrainConfig tc;
    tc.epochs = 3;
    tc.combinerEpochs = 0;

    const auto trainRecs = data.select(data.trainIdx);
    const auto valRecs = data.select(data.valIdx);
    std::vector<nasbench::Architecture> valArchs;
    for (const auto *r : valRecs)
        valArchs.push_back(r->arch);

    std::vector<double> slowLosses, fastLosses;
    std::vector<double> slowScores, fastScores;
    {
        FastPathGuard guard(false);
        core::HwPrNas model(mc, nasbench::DatasetId::Cifar10, 11);
        model.train(trainRecs, valRecs, hw::PlatformId::Pixel3, tc);
        slowLosses = model.valLossHistory();
        slowScores = model.scoreBatch(valArchs);
    }
    {
        FastPathGuard guard(true);
        core::HwPrNas model(mc, nasbench::DatasetId::Cifar10, 11);
        model.train(trainRecs, valRecs, hw::PlatformId::Pixel3, tc);
        fastLosses = model.valLossHistory();
        fastScores = model.scoreBatch(valArchs);
    }

    ASSERT_EQ(slowLosses.size(), fastLosses.size());
    for (std::size_t i = 0; i < slowLosses.size(); ++i)
        EXPECT_EQ(slowLosses[i], fastLosses[i]) << "epoch " << i;
    ASSERT_EQ(slowScores.size(), fastScores.size());
    for (std::size_t i = 0; i < slowScores.size(); ++i)
        EXPECT_EQ(slowScores[i], fastScores[i]) << "arch " << i;
}

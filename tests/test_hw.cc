/**
 * @file
 * Hardware-model tests: workload arithmetic against hand-computed
 * values, cost-model properties (roofline behaviour, monotonicity,
 * platform quirks), and the cross-platform correlation structure the
 * paper reports in Sec. III-E.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "hw/cost_model.h"
#include "hw/platform.h"
#include "hw/workload.h"
#include "nasbench/dataset.h"
#include "nasbench/space.h"

using namespace hwpr;
using namespace hwpr::hw;

TEST(Workload, ConvMacsAndParams)
{
    // 3x3 conv, 32x32, 16 -> 32 channels, stride 1.
    OpWorkload op{OpKind::Conv, 32, 32, 16, 32, 3, 1, 1};
    EXPECT_DOUBLE_EQ(op.macs(), 32.0 * 32 * 32 * 16 * 9);
    EXPECT_DOUBLE_EQ(op.flops(), 2.0 * op.macs());
    EXPECT_DOUBLE_EQ(op.params(), 32.0 * 16 * 9 + 32);
}

TEST(Workload, DepthwiseConvDividesByGroups)
{
    OpWorkload dense{OpKind::Conv, 16, 16, 64, 64, 3, 1, 1};
    OpWorkload dw{OpKind::Conv, 16, 16, 64, 64, 3, 1, 64};
    EXPECT_TRUE(dw.isDepthwise());
    EXPECT_FALSE(dense.isDepthwise());
    EXPECT_DOUBLE_EQ(dw.macs() * 64.0, dense.macs());
}

TEST(Workload, StrideShrinksOutput)
{
    OpWorkload op{OpKind::Conv, 32, 32, 8, 8, 3, 2, 1};
    EXPECT_EQ(op.outH(), 16);
    OpWorkload odd{OpKind::Conv, 33, 33, 8, 8, 3, 2, 1};
    EXPECT_EQ(odd.outH(), 17);
}

TEST(Workload, SkipAndZeroAreFree)
{
    OpWorkload skip{OpKind::Skip, 32, 32, 16, 16, 1, 1, 1};
    OpWorkload zero{OpKind::Zero, 32, 32, 16, 16, 1, 1, 1};
    EXPECT_DOUBLE_EQ(skip.macs(), 0.0);
    EXPECT_DOUBLE_EQ(zero.macs(), 0.0);
    EXPECT_DOUBLE_EQ(zero.outputElems(), 0.0);
}

TEST(Workload, LinearShapes)
{
    OpWorkload fc{OpKind::Linear, 1, 1, 64, 10, 1, 1, 1};
    EXPECT_DOUBLE_EQ(fc.macs(), 640.0);
    EXPECT_DOUBLE_EQ(fc.params(), 650.0);
    EXPECT_DOUBLE_EQ(fc.outputElems(), 10.0);
}

TEST(Platform, AllSevenPresent)
{
    EXPECT_EQ(allPlatforms().size(), kNumPlatforms);
    std::size_t idx = 0;
    for (PlatformId p : allPlatforms()) {
        EXPECT_EQ(platformIndex(p), idx++);
        EXPECT_FALSE(platformName(p).empty());
        const PlatformSpec &spec = platformSpec(p);
        EXPECT_GT(spec.peakMacsPerSec, 0.0);
        EXPECT_GT(spec.memBandwidthBps, 0.0);
    }
}

TEST(CostModel, ZeroAndSkipCostNothing)
{
    const CostModel model = costModelFor(PlatformId::EdgeGpu);
    OpWorkload zero{OpKind::Zero, 32, 32, 16, 16, 1, 1, 1};
    OpWorkload skip{OpKind::Skip, 32, 32, 16, 16, 1, 1, 1};
    EXPECT_DOUBLE_EQ(model.opCost(zero).latencySec, 0.0);
    EXPECT_DOUBLE_EQ(model.opCost(skip).latencySec, 0.0);
}

TEST(CostModel, RooflineTakesMaxOfComputeAndMemory)
{
    const CostModel model = costModelFor(PlatformId::EdgeGpu);
    OpWorkload op{OpKind::Conv, 32, 32, 64, 64, 3, 1, 1};
    const auto cost = model.opCost(op);
    EXPECT_GE(cost.latencySec,
              std::max(cost.computeSec, cost.memorySec));
    EXPECT_GT(cost.energyJ, 0.0);
}

TEST(CostModel, LatencyMonotoneInChannels)
{
    const CostModel model = costModelFor(PlatformId::RaspberryPi4);
    double prev = 0.0;
    for (int c : {16, 32, 64, 128}) {
        OpWorkload op{OpKind::Conv, 16, 16, c, c, 3, 1, 1};
        const double t = model.opCost(op).latencySec;
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(CostModel, DepthwiseRelativeCostMatchesPlatformCharacter)
{
    // Depthwise reduces MACs by 64x. On a CPU (Pixel3) nearly all of
    // that shows up as saved time; on the EdgeGPU the efficiency loss
    // eats most of the advantage.
    OpWorkload dense{OpKind::Conv, 32, 32, 64, 64, 3, 1, 1};
    OpWorkload dw{OpKind::Conv, 32, 32, 64, 64, 3, 1, 64};

    const CostModel pixel = costModelFor(PlatformId::Pixel3);
    const CostModel gpu = costModelFor(PlatformId::EdgeGpu);
    const double pixel_ratio = pixel.opCost(dense).computeSec /
                               pixel.opCost(dw).computeSec;
    const double gpu_ratio =
        gpu.opCost(dense).computeSec / gpu.opCost(dw).computeSec;
    EXPECT_GT(pixel_ratio, gpu_ratio * 2.0);
}

TEST(CostModel, NetworkCostSumsOps)
{
    const CostModel model = costModelFor(PlatformId::Eyeriss);
    OpWorkload a{OpKind::Conv, 16, 16, 8, 8, 3, 1, 1};
    OpWorkload b{OpKind::Conv, 16, 16, 8, 8, 1, 1, 1};
    const auto ca = model.opCost(a);
    const auto cb = model.opCost(b);
    const auto total = model.networkCost({a, b});
    EXPECT_NEAR(total.latencySec,
                ca.latencySec + cb.latencySec +
                    model.spec().baseLatencySec,
                1e-12);
}

TEST(CostModel, UtilizationPenalizesOddChannelCounts)
{
    const CostModel tpu = costModelFor(PlatformId::EdgeTpu);
    // 65 channels on a 64-wide array wastes nearly half the array.
    OpWorkload full{OpKind::Conv, 16, 16, 64, 64, 3, 1, 1};
    OpWorkload odd{OpKind::Conv, 16, 16, 64, 65, 3, 1, 1};
    const double per_mac_full =
        tpu.opCost(full).computeSec / full.macs();
    const double per_mac_odd = tpu.opCost(odd).computeSec / odd.macs();
    EXPECT_GT(per_mac_odd, per_mac_full * 1.5);
}

/**
 * Section III-E structure: compute latency vectors for a sample of
 * both spaces and compare cross-platform Kendall correlations. The
 * ARM family (Pi4, Pixel3) must correlate strongly; the two FPGAs
 * weakly (the paper reports 0.23).
 */
TEST(PlatformCorrelation, FamilyStructureEmerges)
{
    Rng rng(1);
    nasbench::Oracle oracle(nasbench::DatasetId::Cifar10);
    std::vector<std::vector<double>> lat(kNumPlatforms);
    for (int i = 0; i < 200; ++i) {
        // Within-space study (as in the paper's Sec. III-E).
        const auto a = nasbench::nasBench201().sample(rng);
        const auto &rec = oracle.record(a);
        for (std::size_t p = 0; p < kNumPlatforms; ++p)
            lat[p].push_back(rec.latencyMs[p]);
    }
    const auto idx = [](PlatformId p) { return platformIndex(p); };
    const double arm_family =
        kendallTau(lat[idx(PlatformId::RaspberryPi4)],
                   lat[idx(PlatformId::Pixel3)]);
    const double fpga_pair =
        kendallTau(lat[idx(PlatformId::FpgaZC706)],
                   lat[idx(PlatformId::FpgaZCU102)]);
    EXPECT_GT(arm_family, 0.75);
    EXPECT_LT(fpga_pair, arm_family - 0.2);
}

TEST(Energy, EyerissMostEfficientOnConvNets)
{
    Rng rng(2);
    nasbench::Oracle oracle(nasbench::DatasetId::Cifar10);
    int eyeriss_wins = 0;
    const int n = 30;
    for (int i = 0; i < n; ++i) {
        const auto a = nasbench::nasBench201().sample(rng);
        const auto &rec = oracle.record(a);
        const double e_eyeriss =
            rec.energyMj[platformIndex(PlatformId::Eyeriss)];
        bool best = true;
        for (std::size_t p = 0; p < kNumPlatforms; ++p)
            if (rec.energyMj[p] < e_eyeriss)
                best = false;
        if (best)
            ++eyeriss_wins;
    }
    // The ASIC should win energy on the clear majority of conv nets.
    EXPECT_GT(eyeriss_wins, n / 2);
}

/**
 * @file
 * Core-library tests: encoders, the single-metric predictor, the
 * HW-PR-NAS model (training improves Pareto-rank correlation and the
 * per-branch predictions), and the scalable variant with the frozen-
 * encoder energy fine-tune. Training sizes are kept small so the test
 * suite stays fast; quality thresholds are correspondingly loose.
 */

#include <gtest/gtest.h>

#include <fstream>

#include "common/stats.h"
#include "core/encoding.h"
#include "core/hwprnas.h"
#include "core/predictor.h"
#include "core/scalable.h"
#include "core/train_util.h"
#include "pareto/pareto.h"
#include "search/evaluator.h"

using namespace hwpr;
using namespace hwpr::core;

namespace
{

/** Shared tiny dataset fixture (sampled once per process). */
const nasbench::SampledDataset &
tinyData()
{
    static const nasbench::SampledDataset data = [] {
        static nasbench::Oracle oracle(nasbench::DatasetId::Cifar10);
        Rng rng(1234);
        return nasbench::SampledDataset::sample(
            {&nasbench::nasBench201(), &nasbench::fbnet()}, oracle,
            420, 280, 70, rng);
    }();
    return data;
}

EncoderConfig
tinyEncoder()
{
    EncoderConfig cfg;
    cfg.gcnHidden = 24;
    cfg.lstmHidden = 24;
    cfg.embedDim = 12;
    return cfg;
}

std::vector<nasbench::Architecture>
archsOf(const std::vector<const nasbench::ArchRecord *> &recs)
{
    std::vector<nasbench::Architecture> out;
    for (const auto *r : recs)
        out.push_back(r->arch);
    return out;
}

} // namespace

TEST(TargetScalerTest, RoundTrips)
{
    const std::vector<double> y = {1, 5, 9, 13};
    const auto s = TargetScaler::fit(y);
    for (double v : y)
        EXPECT_NEAR(s.denorm(s.norm(v)), v, 1e-12);
    const auto n = s.normAll(y);
    EXPECT_NEAR(mean(n), 0.0, 1e-12);
}

TEST(TrainUtil, BatchesCoverAllIndices)
{
    Rng rng(2);
    const auto batches = makeBatches(100, 32, rng);
    std::vector<bool> seen(100, false);
    for (const auto &b : batches)
        for (std::size_t i : b)
            seen[i] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(TrainUtil, SnapshotRestore)
{
    nn::Tensor p = nn::Tensor::param(Matrix(2, 2, 1.0), "p");
    const auto snap = snapshotParams({p});
    p.valueMut()(0, 0) = 99.0;
    restoreParams({p}, snap);
    EXPECT_DOUBLE_EQ(p.value()(0, 0), 1.0);
}

class EncoderDimTest : public ::testing::TestWithParam<EncodingKind>
{
};

TEST_P(EncoderDimTest, DimensionsAndDeterminism)
{
    const auto &data = tinyData();
    const auto fit = archsOf(data.select(data.trainIdx));
    Rng rng(3);
    ArchEncoder enc(GetParam(), tinyEncoder(),
                    nasbench::DatasetId::Cifar10, fit, rng);
    EXPECT_GT(enc.dim(), 0u);

    std::vector<nasbench::Architecture> batch(fit.begin(),
                                              fit.begin() + 5);
    const nn::Tensor a = enc.encode(batch);
    const nn::Tensor b = enc.encode(batch);
    EXPECT_EQ(a.rows(), 5u);
    EXPECT_EQ(a.cols(), enc.dim());
    for (std::size_t i = 0; i < a.value().size(); ++i)
        EXPECT_DOUBLE_EQ(a.value().raw()[i], b.value().raw()[i]);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, EncoderDimTest,
    ::testing::Values(EncodingKind::AF, EncodingKind::LSTM,
                      EncodingKind::GCN, EncodingKind::LSTM_AF,
                      EncodingKind::GCN_AF, EncodingKind::ALL));

TEST(EncoderTest, AllConcatenatesAllThree)
{
    const auto &data = tinyData();
    const auto fit = archsOf(data.select(data.trainIdx));
    Rng rng(4);
    const EncoderConfig cfg = tinyEncoder();
    ArchEncoder enc(EncodingKind::ALL, cfg,
                    nasbench::DatasetId::Cifar10, fit, rng);
    EXPECT_EQ(enc.dim(), nasbench::kNumArchFeatures + cfg.lstmHidden +
                             cfg.gcnHidden);
}

TEST(EncoderTest, MixedSpaceBatch)
{
    const auto &data = tinyData();
    const auto fit = archsOf(data.select(data.trainIdx));
    Rng rng(5);
    ArchEncoder enc(EncodingKind::ALL, tinyEncoder(),
                    nasbench::DatasetId::Cifar10, fit, rng);
    // Force one arch of each space into the same batch.
    Rng srng(6);
    std::vector<nasbench::Architecture> batch = {
        nasbench::nasBench201().sample(srng),
        nasbench::fbnet().sample(srng)};
    const nn::Tensor out = enc.encode(batch);
    EXPECT_EQ(out.rows(), 2u);
}

TEST(Predictor, MlpLearnsLatencyRanking)
{
    const auto &data = tinyData();
    MetricPredictor pred(EncodingKind::LSTM_AF, tinyEncoder(),
                         RegressorKind::Mlp,
                         nasbench::DatasetId::Cifar10, 7);
    PredictorTrainConfig cfg;
    // Small dataset -> few optimizer steps per epoch; compensate with
    // a larger learning rate and more epochs than the paper defaults.
    cfg.epochs = 40;
    cfg.lr = 1.5e-3;
    const std::size_t pidx =
        hw::platformIndex(hw::PlatformId::EdgeGpu);
    // Log target: latency spans orders of magnitude and Kendall tau
    // is invariant to the monotone transform.
    const auto target = [pidx](const nasbench::ArchRecord &r) {
        return std::log(r.latencyMs[pidx]);
    };
    pred.train(data.select(data.trainIdx), data.select(data.valIdx),
               target, cfg);
    const auto q =
        evaluatePredictor(pred, data.select(data.testIdx), target);
    EXPECT_GT(q.kendall, 0.5);
}

TEST(Predictor, XgboostLearnsAccuracyRanking)
{
    const auto &data = tinyData();
    MetricPredictor pred(EncodingKind::AF, tinyEncoder(),
                         RegressorKind::XGBoost,
                         nasbench::DatasetId::Cifar10, 8);
    const auto target = [](const nasbench::ArchRecord &r) {
        return r.accuracy;
    };
    pred.train(data.select(data.trainIdx), data.select(data.valIdx),
               target, {});
    const auto q =
        evaluatePredictor(pred, data.select(data.testIdx), target);
    EXPECT_GT(q.kendall, 0.5);
    EXPECT_LT(q.rmse, 20.0);
}

TEST(Predictor, LgboostTrains)
{
    const auto &data = tinyData();
    MetricPredictor pred(EncodingKind::AF, tinyEncoder(),
                         RegressorKind::LGBoost,
                         nasbench::DatasetId::Cifar10, 9);
    const auto target = [](const nasbench::ArchRecord &r) {
        return r.accuracy;
    };
    pred.train(data.select(data.trainIdx), data.select(data.valIdx),
               target, {});
    const auto q =
        evaluatePredictor(pred, data.select(data.testIdx), target);
    EXPECT_GT(q.kendall, 0.4);
}

TEST(HwPrNasTest, TrainingProducesUsefulScores)
{
    const auto &data = tinyData();
    HwPrNasConfig mc;
    mc.encoder = tinyEncoder();
    HwPrNas model(mc, nasbench::DatasetId::Cifar10, 10);
    TrainConfig tc;
    tc.epochs = 35;
    // Tiny dataset -> few optimizer steps; raise the paper's lr.
    tc.learningRate = 2e-3;
    tc.combinerEpochs = 2;
    model.train(data.select(data.trainIdx), data.select(data.valIdx),
                hw::PlatformId::EdgeGpu, tc);
    EXPECT_TRUE(model.trained());

    const auto test = data.select(data.testIdx);
    std::vector<pareto::Point> pts;
    for (const auto *r : test)
        pts.push_back(
            search::trueObjectives(*r, hw::PlatformId::EdgeGpu));
    const auto ranks = pareto::paretoRanks(pts);
    std::vector<double> neg_rank;
    for (int r : ranks)
        neg_rank.push_back(-double(r));
    const double tau =
        kendallTau(model.scores(archsOf(test)), neg_rank);
    // Tiny dataset/epoch budget: the bar is "clearly informative",
    // not the paper-scale correlation.
    EXPECT_GT(tau, 0.22);

    // Branch predictions are calibrated to physical units.
    const auto acc = model.predictAccuracy(archsOf(test));
    for (double v : acc) {
        EXPECT_GT(v, -50.0);
        EXPECT_LT(v, 150.0);
    }
    const auto lat = model.predictLatency(archsOf(test));
    for (double v : lat)
        EXPECT_GT(v, 0.0); // latencies are positive by construction
}

TEST(HwPrNasTest, ScoresDeterministicAfterTraining)
{
    const auto &data = tinyData();
    HwPrNasConfig mc;
    mc.encoder = tinyEncoder();
    HwPrNas model(mc, nasbench::DatasetId::Cifar10, 11);
    TrainConfig tc;
    tc.epochs = 3;
    tc.combinerEpochs = 0;
    model.train(data.select(data.trainIdx), data.select(data.valIdx),
                hw::PlatformId::Pixel3, tc);
    const auto archs = archsOf(data.select(data.testIdx));
    const auto s1 = model.scores(archs);
    const auto s2 = model.scores(archs);
    EXPECT_EQ(s1, s2);
}

TEST(HwPrNasTest, RmseOnlyAblationTrains)
{
    // Footnote 2 ablation: listwise loss disabled.
    const auto &data = tinyData();
    HwPrNasConfig mc;
    mc.encoder = tinyEncoder();
    HwPrNas model(mc, nasbench::DatasetId::Cifar10, 12);
    TrainConfig tc;
    tc.epochs = 15;
    tc.learningRate = 2e-3;
    tc.listwiseLoss = false;
    model.train(data.select(data.trainIdx), data.select(data.valIdx),
                hw::PlatformId::EdgeGpu, tc);
    EXPECT_TRUE(model.trained());
    const auto test = data.select(data.testIdx);
    std::vector<double> true_acc;
    for (const auto *r : test)
        true_acc.push_back(r->accuracy);
    EXPECT_GT(kendallTau(model.predictAccuracy(archsOf(test)),
                         true_acc),
              0.25);
}

TEST(ScalableTest, TrainAndAddEnergy)
{
    const auto &data = tinyData();
    ScalableConfig sc;
    sc.encoder = tinyEncoder();
    ScalableHwPrNas model(sc, nasbench::DatasetId::Cifar10, 13);
    TrainConfig tc;
    tc.epochs = 8;
    model.train(data.select(data.trainIdx), data.select(data.valIdx),
                hw::PlatformId::EdgeGpu, tc);
    EXPECT_TRUE(model.trained());
    EXPECT_FALSE(model.energyAware());

    const auto archs = archsOf(data.select(data.testIdx));
    const auto before = model.scores(archs);
    model.addEnergyObjective(data.select(data.trainIdx), 3);
    EXPECT_TRUE(model.energyAware());
    const auto after = model.scores(archs);
    // Fine-tuning must actually change the scoring function.
    double diff = 0.0;
    for (std::size_t i = 0; i < before.size(); ++i)
        diff += std::abs(before[i] - after[i]);
    EXPECT_GT(diff, 1e-9);

    // Scores still rank 3-objective dominance better than chance.
    std::vector<pareto::Point> pts;
    for (const auto *r : data.select(data.testIdx))
        pts.push_back(search::trueObjectives(
            *r, hw::PlatformId::EdgeGpu, true));
    const auto ranks = pareto::paretoRanks(pts);
    std::vector<double> neg_rank;
    for (int r : ranks)
        neg_rank.push_back(-double(r));
    EXPECT_GT(kendallTau(after, neg_rank), 0.1);
}

TEST(Checkpoint, SaveLoadRoundTripsScores)
{
    const auto &data = tinyData();
    HwPrNasConfig mc;
    mc.encoder = tinyEncoder();
    HwPrNas model(mc, nasbench::DatasetId::Cifar10, 21);
    TrainConfig tc;
    tc.epochs = 3;
    tc.combinerEpochs = 0;
    model.train(data.select(data.trainIdx), data.select(data.valIdx),
                hw::PlatformId::Eyeriss, tc);

    const std::string path = "/tmp/hwpr_ckpt_test.bin";
    ASSERT_TRUE(model.save(path));

    const auto loaded = HwPrNas::load(path);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->platform(), hw::PlatformId::Eyeriss);
    EXPECT_EQ(loaded->dataset(), nasbench::DatasetId::Cifar10);

    const auto archs = archsOf(data.select(data.testIdx));
    const auto s1 = model.scores(archs);
    const auto s2 = loaded->scores(archs);
    ASSERT_EQ(s1.size(), s2.size());
    for (std::size_t i = 0; i < s1.size(); ++i)
        EXPECT_NEAR(s1[i], s2[i], 1e-12);

    const auto a1 = model.predictAccuracy(archs);
    const auto a2 = loaded->predictAccuracy(archs);
    for (std::size_t i = 0; i < a1.size(); ++i)
        EXPECT_NEAR(a1[i], a2[i], 1e-12);
}

TEST(Checkpoint, LoadRejectsMissingFile)
{
    EXPECT_EQ(HwPrNas::load("/tmp/does_not_exist_hwpr.bin"), nullptr);
}

TEST(Checkpoint, LoadRejectsGarbage)
{
    const std::string path = "/tmp/hwpr_garbage.bin";
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a checkpoint at all";
    }
    EXPECT_EQ(HwPrNas::load(path), nullptr);
}

TEST(Checkpoint, LoadRejectsTruncated)
{
    const auto &data = tinyData();
    HwPrNasConfig mc;
    mc.encoder = tinyEncoder();
    HwPrNas model(mc, nasbench::DatasetId::Cifar10, 22);
    TrainConfig tc;
    tc.epochs = 2;
    tc.combinerEpochs = 0;
    model.train(data.select(data.trainIdx), data.select(data.valIdx),
                hw::PlatformId::Pixel3, tc);
    const std::string path = "/tmp/hwpr_trunc.bin";
    ASSERT_TRUE(model.save(path));
    // Truncate to half.
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              std::streamsize(contents.size() / 2));
    out.close();
    EXPECT_EQ(HwPrNas::load(path), nullptr);
}

TEST(MultiPlatform, JointTrainingServesSeveralHeads)
{
    const auto &data = tinyData();
    HwPrNasConfig mc;
    mc.encoder = tinyEncoder();
    HwPrNas model(mc, nasbench::DatasetId::Cifar10, 31);
    TrainConfig tc;
    tc.epochs = 18;
    tc.learningRate = 2e-3;
    const std::vector<hw::PlatformId> platforms = {
        hw::PlatformId::EdgeGpu, hw::PlatformId::Pixel3};
    model.trainMultiPlatform(data.select(data.trainIdx),
                             data.select(data.valIdx), platforms, tc);
    ASSERT_TRUE(model.trained());

    const auto test = data.select(data.testIdx);
    const auto archs = archsOf(test);
    for (hw::PlatformId p : platforms) {
        std::vector<double> true_lat;
        for (const auto *r : test)
            true_lat.push_back(r->latencyMs[hw::platformIndex(p)]);
        const double tau =
            kendallTau(model.predictLatencyFor(archs, p), true_lat);
        EXPECT_GT(tau, 0.3) << hw::platformName(p);
    }
    // The two heads disagree where the platforms disagree: scores
    // against different heads must not be identical.
    const auto s_gpu =
        model.scoresFor(archs, hw::PlatformId::EdgeGpu);
    const auto s_pixel =
        model.scoresFor(archs, hw::PlatformId::Pixel3);
    double diff = 0.0;
    for (std::size_t i = 0; i < s_gpu.size(); ++i)
        diff += std::abs(s_gpu[i] - s_pixel[i]);
    EXPECT_GT(diff, 1e-9);
}

TEST(MultiPlatform, ActivePlatformRetargetsScores)
{
    const auto &data = tinyData();
    HwPrNasConfig mc;
    mc.encoder = tinyEncoder();
    HwPrNas model(mc, nasbench::DatasetId::Cifar10, 32);
    TrainConfig tc;
    tc.epochs = 4;
    model.trainMultiPlatform(
        data.select(data.trainIdx), data.select(data.valIdx),
        {hw::PlatformId::EdgeTpu, hw::PlatformId::Eyeriss}, tc);
    const auto archs = archsOf(data.select(data.testIdx));
    model.setActivePlatform(hw::PlatformId::Eyeriss);
    const auto via_active = model.scores(archs);
    const auto direct =
        model.scoresFor(archs, hw::PlatformId::Eyeriss);
    EXPECT_EQ(via_active, direct);
}

TEST(Checkpoint, ScalableSaveLoadRoundTrips)
{
    const auto &data = tinyData();
    ScalableConfig sc;
    sc.encoder = tinyEncoder();
    ScalableHwPrNas model(sc, nasbench::DatasetId::Cifar10, 41);
    TrainConfig tc;
    tc.epochs = 4;
    model.train(data.select(data.trainIdx), data.select(data.valIdx),
                hw::PlatformId::EdgeGpu, tc);
    model.addEnergyObjective(data.select(data.trainIdx), 2);

    const std::string path = "/tmp/hwpr_scalable_ckpt.bin";
    ASSERT_TRUE(model.save(path));
    const auto loaded = ScalableHwPrNas::load(path);
    ASSERT_NE(loaded, nullptr);
    EXPECT_TRUE(loaded->energyAware());
    EXPECT_EQ(loaded->platform(), hw::PlatformId::EdgeGpu);

    const auto archs = archsOf(data.select(data.testIdx));
    const auto s1 = model.scores(archs);
    const auto s2 = loaded->scores(archs);
    for (std::size_t i = 0; i < s1.size(); ++i)
        EXPECT_NEAR(s1[i], s2[i], 1e-12);
}

TEST(Checkpoint, ScalableRejectsWrongKind)
{
    // A HwPrNas checkpoint must not load as a scalable model.
    const auto &data = tinyData();
    HwPrNasConfig mc;
    mc.encoder = tinyEncoder();
    HwPrNas model(mc, nasbench::DatasetId::Cifar10, 42);
    TrainConfig tc;
    tc.epochs = 2;
    tc.combinerEpochs = 0;
    model.train(data.select(data.trainIdx), data.select(data.valIdx),
                hw::PlatformId::EdgeGpu, tc);
    const std::string path = "/tmp/hwpr_kind_test.bin";
    ASSERT_TRUE(model.save(path));
    EXPECT_EQ(ScalableHwPrNas::load(path), nullptr);
}

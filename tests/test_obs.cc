/**
 * @file
 * Observability-layer tests: histogram bucket math and percentiles,
 * counter correctness under parallelFor contention, span nesting and
 * thread attribution in the exported Chrome trace JSON, the disabled
 * path recording nothing, sampling-profiler attribution, rank-cache
 * eviction accounting, and same-seed fit/search being bit-identical
 * with tracing + metrics + profiling on vs off.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/obs.h"
#include "common/rng.h"
#include "common/threadpool.h"
#include "core/hwprnas.h"
#include "core/rank_cache.h"
#include "nasbench/dataset.h"
#include "nasbench/space.h"
#include "search/moea.h"
#include "search/surrogate_evaluator.h"

using namespace hwpr;

namespace
{

/** RAII toggle restoring both collection switches. */
class ObsGuard
{
  public:
    ObsGuard(bool tracing, bool metrics)
        : savedTracing_(obs::tracingEnabled()),
          savedMetrics_(obs::metricsEnabled())
    {
        obs::setTracingEnabled(tracing);
        obs::setMetricsEnabled(metrics);
    }

    ~ObsGuard()
    {
        obs::setTracingEnabled(savedTracing_);
        obs::setMetricsEnabled(savedMetrics_);
    }

  private:
    bool savedTracing_;
    bool savedMetrics_;
};

/** Occurrences of @p needle in @p text. */
std::size_t
countOf(const std::string &text, const std::string &needle)
{
    std::size_t n = 0;
    for (auto at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + needle.size()))
        ++n;
    return n;
}

} // namespace

TEST(ObsHistogram, BucketMath)
{
    obs::Histogram h({1.0, 10.0, 100.0});
    // Bounds are inclusive upper bounds; 4 buckets total (3 + over).
    h.record(0.5);   // bucket 0
    h.record(1.0);   // bucket 0 (inclusive)
    h.record(1.5);   // bucket 1
    h.record(10.0);  // bucket 1
    h.record(99.0);  // bucket 2
    h.record(100.5); // overflow
    h.record(1e9);   // overflow

    EXPECT_EQ(h.count(), 7u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 2u);
    EXPECT_DOUBLE_EQ(h.sum(),
                     0.5 + 1.0 + 1.5 + 10.0 + 99.0 + 100.5 + 1e9);
    EXPECT_DOUBLE_EQ(h.mean(), h.sum() / 7.0);

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(h.bucketCount(i), 0u);
}

TEST(ObsHistogram, PercentileInterpolation)
{
    obs::Histogram h({10.0, 20.0, 40.0});
    for (int i = 0; i < 100; ++i)
        h.record(15.0); // all land in (10, 20]
    // Linear interpolation inside the bucket: the quantile position
    // maps onto [lo, hi).
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 15.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 19.9);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 20.0);
    // Out-of-range q clamps instead of misbehaving.
    EXPECT_DOUBLE_EQ(h.percentile(1.7), 20.0);

    obs::Histogram first({10.0, 20.0});
    first.record(5.0); // bucket 0: lo = min(0, bound) = 0
    EXPECT_DOUBLE_EQ(first.percentile(0.5), 5.0);

    obs::Histogram over({10.0, 20.0});
    over.record(1e9); // overflow clamps to the last finite bound
    EXPECT_DOUBLE_EQ(over.percentile(0.5), 20.0);

    obs::Histogram empty({10.0});
    EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);
}

TEST(ObsHistogram, OverflowBucketClampsEveryPercentile)
{
    // Regression test for the overflow-bucket edge: samples past the
    // last bucket bound must clamp every percentile to that bound —
    // never extrapolate beyond it, never go infinite. This is the
    // shape a latency histogram takes when a stall pushes the tail
    // past the largest configured bound.
    obs::Histogram h({100.0, 1000.0});
    for (int i = 0; i < 10000; ++i)
        h.record(1e12); // all mass in the overflow bucket
    for (const double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
        const double p = h.percentile(q);
        EXPECT_TRUE(std::isfinite(p)) << "q=" << q;
        EXPECT_DOUBLE_EQ(p, 1000.0) << "q=" << q;
    }

    // Mixed mass: p50 interpolates inside a finite bucket while the
    // tail percentiles clamp, and no percentile exceeds the edge.
    obs::Histogram mixed({100.0, 1000.0});
    for (int i = 0; i < 60; ++i)
        mixed.record(50.0); // bucket 0
    for (int i = 0; i < 40; ++i)
        mixed.record(5e9); // overflow
    EXPECT_LE(mixed.percentile(0.5), 100.0);
    EXPECT_DOUBLE_EQ(mixed.percentile(0.99), 1000.0);
    EXPECT_DOUBLE_EQ(mixed.percentile(1.0), 1000.0);

    // The snapshot's embedded p99 honours the same clamp (serve
    // exposes these via /stats).
    auto &reg = obs::Registry::global();
    obs::Histogram &snap_h =
        reg.histogram("test.obs.overflow_hist", {100.0, 1000.0});
    snap_h.reset();
    for (int i = 0; i < 100; ++i)
        snap_h.record(1e12);
    const json::Value snap = json::parse(reg.snapshotJson());
    const json::Value *hist =
        snap.find("histograms")->find("test.obs.overflow_hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_DOUBLE_EQ(hist->numberOr("p99", -1.0), 1000.0);
    snap_h.reset();
}

TEST(ObsRegistry, SnapshotEmbedsPercentilesInSortedKeyOrder)
{
    auto &reg = obs::Registry::global();
    obs::Histogram &h =
        reg.histogram("test.obs.pctl_hist", {10.0, 20.0});
    h.reset();
    for (int i = 0; i < 10; ++i)
        h.record(15.0);
    const std::string json = reg.snapshotJson();
    const auto at = json.find("\"test.obs.pctl_hist\"");
    ASSERT_NE(at, std::string::npos);
    // Percentile summaries ride along with count/sum/mean. Numbers
    // serialize with %.17g (round-trip exact, not pretty), so read
    // them back through the parser rather than string-matching.
    const json::Value snap = json::parse(json);
    const json::Value *hist =
        snap.find("histograms")->find("test.obs.pctl_hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_DOUBLE_EQ(hist->numberOr("p50", 0.0), 15.0);
    EXPECT_NEAR(hist->numberOr("p90", 0.0), 19.0, 1e-9);
    EXPECT_NEAR(hist->numberOr("p99", 0.0), 19.9, 1e-9);
    EXPECT_LT(json.find("\"count\"", at), json.find("\"p50\"", at));
    EXPECT_LT(json.find("\"p50\"", at), json.find("\"p90\"", at));

    // std::map-backed registry: snapshots render keys sorted, so two
    // snapshots of the same state are textually identical.
    reg.counter("test.obs.order_a").add();
    reg.counter("test.obs.order_b").add();
    const std::string two = reg.snapshotJson();
    EXPECT_LT(two.find("\"test.obs.order_a\""),
              two.find("\"test.obs.order_b\""));
    EXPECT_EQ(two, reg.snapshotJson());
}

TEST(ObsRegistry, FindOrCreateAndSnapshot)
{
    auto &reg = obs::Registry::global();
    obs::Counter &c = reg.counter("test.obs.counter");
    c.reset();
    c.add(3);
    // Same name must resolve to the same metric.
    EXPECT_EQ(&reg.counter("test.obs.counter"), &c);
    EXPECT_EQ(reg.counterValue("test.obs.counter"), 3u);
    EXPECT_EQ(reg.counterValue("test.obs.never_registered"), 0u);

    reg.gauge("test.obs.gauge").set(2.5);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("test.obs.gauge"), 2.5);

    obs::Histogram &h =
        reg.histogram("test.obs.hist", {1.0, 2.0});
    h.reset();
    h.record(1.5);
    EXPECT_EQ(reg.findHistogram("test.obs.hist"), &h);
    EXPECT_EQ(reg.findHistogram("test.obs.nope"), nullptr);

    const std::string json = reg.snapshotJson();
    EXPECT_NE(json.find("\"test.obs.counter\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"test.obs.gauge\": 2.5"), std::string::npos);
    EXPECT_NE(json.find("\"test.obs.hist\""), std::string::npos);
    // The non-empty bucket renders as [upper_bound, count].
    EXPECT_NE(json.find("[2, 1]"), std::string::npos);
}

TEST(ObsCounter, CorrectUnderParallelForContention)
{
    ObsGuard guard(false, true);
    obs::Counter &c =
        obs::Registry::global().counter("test.obs.contended");
    c.reset();
    obs::Histogram &h = obs::Registry::global().histogram(
        "test.obs.contended_hist", {1e12});
    h.reset();

    constexpr std::size_t kIters = 20000;
    ExecContext::global().pool->parallelFor(
        0, kIters, 1, [&](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) {
                c.add();
                h.record(1.0);
            }
        });
    EXPECT_EQ(c.value(), kIters);
    EXPECT_EQ(h.count(), kIters);
    EXPECT_EQ(h.bucketCount(0), kIters);
    EXPECT_DOUBLE_EQ(h.sum(), double(kIters));
}

TEST(ObsTrace, SpanNestingAndThreadAttribution)
{
    obs::clearTrace();
    ObsGuard guard(true, false);
    obs::setThreadName("test-main");

    {
        HWPR_SPAN("outer", {{"x", 1.0}});
        {
            HWPR_SPAN("inner");
        }
        // parallelFor may fan chunks out to pool workers or run the
        // whole range inline (single-thread pool); either way every
        // invocation records into the calling thread's own buffer.
        ExecContext::global().pool->parallelFor(
            0, 4, 1, [&](std::size_t, std::size_t) {
                HWPR_SPAN("chunk");
            });
    }
    // A span from an explicit second thread must land in a separate
    // per-thread buffer and render in its own tid lane.
    std::thread([] {
        obs::setThreadName("test-worker");
        HWPR_SPAN("worker_span");
    }).join();

    EXPECT_GE(obs::traceEventCount(), 4u);
    const std::string json = obs::traceJson();

    // Parseable header/footer and metadata for the named threads.
    EXPECT_NE(json.find("{\"traceEvents\": ["), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"test-main\""), std::string::npos);
    EXPECT_NE(json.find("\"test-worker\""), std::string::npos);

    // Complete events with our names and the span attribute.
    EXPECT_EQ(countOf(json, "\"name\": \"outer\""), 1u);
    EXPECT_EQ(countOf(json, "\"name\": \"inner\""), 1u);
    EXPECT_GE(countOf(json, "\"name\": \"chunk\""), 1u);
    EXPECT_EQ(countOf(json, "\"name\": \"worker_span\""), 1u);
    EXPECT_NE(json.find("\"args\": {\"x\": 1"), std::string::npos);

    // Nesting: inner's [ts, ts+dur] interval must sit inside outer's.
    auto field = [&](const std::string &name, const char *key) {
        const auto at = json.find("\"name\": \"" + name + "\"");
        EXPECT_NE(at, std::string::npos);
        const std::string k = std::string("\"") + key + "\": ";
        const auto kp = json.find(k, at);
        EXPECT_NE(kp, std::string::npos);
        return std::strtod(json.c_str() + kp + k.size(), nullptr);
    };
    const double outer_ts = field("outer", "ts");
    const double outer_end = outer_ts + field("outer", "dur");
    const double inner_ts = field("inner", "ts");
    const double inner_end = inner_ts + field("inner", "dur");
    EXPECT_GE(inner_ts, outer_ts);
    EXPECT_LE(inner_end, outer_end);

    // Thread attribution: outer and worker_span carry different tids
    // (tid precedes name within an event, so search backwards).
    auto tidOf = [&](const std::string &name) {
        const auto at = json.find("\"name\": \"" + name + "\"");
        EXPECT_NE(at, std::string::npos);
        const std::string k = "\"tid\": ";
        const auto kp = json.rfind(k, at);
        EXPECT_NE(kp, std::string::npos);
        return std::strtod(json.c_str() + kp + k.size(), nullptr);
    };
    EXPECT_NE(tidOf("outer"), tidOf("worker_span"));

    obs::clearTrace();
}

TEST(ObsTrace, SpanArgAttachesLateAttributes)
{
    obs::clearTrace();
    ObsGuard guard(true, false);
    {
        obs::Span span("late_args", {{"known", 1.0}});
        span.arg("late", 42.0);
        span.arg("known", 2.0); // overwrite
    }
    const std::string json = obs::traceJson();
    EXPECT_NE(json.find("\"late\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"known\": 2"), std::string::npos);
    EXPECT_EQ(json.find("\"known\": 1,"), std::string::npos);
    obs::clearTrace();
}

TEST(ObsDisabled, RecordsNothing)
{
    obs::clearTrace();
    ObsGuard guard(false, false);

    const std::size_t events_before = obs::traceEventCount();
    obs::Counter &c =
        obs::Registry::global().counter("test.obs.disabled");
    c.reset();
    obs::Histogram &h = obs::Registry::global().histogram(
        "test.obs.disabled_hist", {1.0});
    h.reset();

    {
        HWPR_SPAN("must_not_record", {{"x", 1.0}});
        obs::ScopedTimer timer(h); // disabled at construction
        // Guarded sites skip the registry entirely when disabled; the
        // obs-instrumented code under test follows this pattern.
        if (obs::metricsEnabled())
            c.add();
    }

    EXPECT_EQ(obs::traceEventCount(), events_before);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.count(), 0u);
}

TEST(ObsProfiler, AttributesSamplesToTheBusySpan)
{
    ASSERT_FALSE(obs::profilingEnabled());
    obs::clearProfile();
    obs::setProfileIntervalUs(200);
    obs::setProfilingEnabled(true);
    {
        HWPR_SPAN("profiler_busy");
        // Spin inside the span until the sampler has clearly ticked;
        // nothing else in this process holds a span meanwhile.
        const double t0 = obs::nowMicros();
        volatile double sink = 0.0;
        std::uint64_t needed = 25;
        while (obs::profileSampleCount() < needed &&
               obs::nowMicros() - t0 < 5e6)
            for (int i = 0; i < 1000; ++i)
                sink = sink + double(i) * 1e-9;
    }
    obs::setProfilingEnabled(false);
    ASSERT_FALSE(obs::profilingEnabled());

    const std::uint64_t total = obs::profileSampleCount();
    const std::uint64_t busy =
        obs::profileSelfSamples("profiler_busy");
    ASSERT_GE(total, 10u);
    // Sampler attribution sanity: the one busy span owns the profile.
    EXPECT_GT(double(busy), 0.9 * double(total))
        << "busy " << busy << " of " << total;

    // The armed run leaves a profile section in the snapshot, with
    // flat and top-down tables.
    const std::string json = obs::Registry::global().snapshotJson();
    EXPECT_NE(json.find("\"profile\""), std::string::npos);
    EXPECT_NE(json.find("\"profiler_busy\""), std::string::npos);
    EXPECT_NE(json.find("\"top_down\""), std::string::npos);
    EXPECT_NE(json.find("\"self_us_est\""), std::string::npos);

    obs::clearProfile();
    EXPECT_EQ(obs::profileSampleCount(), 0u);
}

TEST(ObsProfiler, NestedSpansSplitSelfAndTotal)
{
    ASSERT_FALSE(obs::profilingEnabled());
    obs::clearProfile();
    obs::setProfileIntervalUs(200);
    obs::setProfilingEnabled(true);
    {
        HWPR_SPAN("profiler_outer");
        HWPR_SPAN("profiler_inner");
        const double t0 = obs::nowMicros();
        volatile double sink = 0.0;
        while (obs::profileSampleCount() < 10 &&
               obs::nowMicros() - t0 < 5e6)
            for (int i = 0; i < 1000; ++i)
                sink = sink + double(i) * 1e-9;
    }
    obs::setProfilingEnabled(false);

    // All busy time is inside inner, so outer accrues (almost) no
    // self samples while its total covers inner's.
    const std::string json = obs::profileJson();
    EXPECT_NE(json.find("profiler_outer;profiler_inner"),
              std::string::npos);
    EXPECT_GT(obs::profileSelfSamples("profiler_inner"), 0u);
    obs::clearProfile();
}

TEST(ObsRankCache, EvictsPastCapAndCountsAccounting)
{
    core::EncodingCache cache;
    cache.init(/*width=*/3, /*capacity=*/8);

    Rng rng(123);
    std::vector<nasbench::Architecture> archs;
    while (archs.size() < 20) {
        const auto a = nasbench::nasBench201().sample(rng);
        bool dup = false;
        for (const auto &b : archs)
            dup = dup || b.hash(1) == a.hash(1);
        if (!dup)
            archs.push_back(a);
    }

    double row[3] = {0.0, 0.0, 0.0};
    // Cold lookups are misses.
    EXPECT_FALSE(cache.lookup(archs[0], row));
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);

    for (std::size_t i = 0; i < archs.size(); ++i) {
        row[0] = double(i);
        cache.insert(archs[i], row);
        EXPECT_LE(cache.size(), 8u) << "insert " << i;
    }
    // 20 inserts into capacity 8: exactly 12 evictions, cap held.
    EXPECT_EQ(cache.size(), 8u);
    EXPECT_EQ(cache.evictions(), 12u);

    // The most recent insert is resident; its row reads back intact.
    EXPECT_TRUE(cache.lookup(archs.back(), row));
    EXPECT_EQ(row[0], 19.0);
    EXPECT_EQ(cache.hits(), 1u);

    // init() resets rows and accounting alike.
    cache.init(3, 8);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits() + cache.misses() + cache.evictions(), 0u);
}

TEST(ObsDeterminism, SameSeedFitIdenticalWithObsOnVsOff)
{
    // Recording only reads the steady clock: a same-seed fit with
    // tracing + metrics armed must produce a bit-identical loss
    // trajectory and scores.
    static nasbench::Oracle oracle(nasbench::DatasetId::Cifar10);
    Rng rng(77);
    const auto data = nasbench::SampledDataset::sample(
        {&nasbench::nasBench201()}, oracle, 120, 80, 40, rng);

    core::HwPrNasConfig mc;
    mc.encoder.gcnHidden = 16;
    mc.encoder.lstmHidden = 16;
    mc.encoder.embedDim = 8;

    core::TrainConfig tc;
    tc.epochs = 2;
    tc.combinerEpochs = 0;

    const auto trainRecs = data.select(data.trainIdx);
    const auto valRecs = data.select(data.valIdx);
    std::vector<nasbench::Architecture> valArchs;
    for (const auto *r : valRecs)
        valArchs.push_back(r->arch);

    std::vector<double> offLosses, onLosses;
    std::vector<double> offScores, onScores;
    {
        ObsGuard guard(false, false);
        core::HwPrNas model(mc, nasbench::DatasetId::Cifar10, 5);
        model.train(trainRecs, valRecs, hw::PlatformId::EdgeGpu, tc);
        offLosses = model.valLossHistory();
        offScores = model.scoreBatch(valArchs);
    }
    {
        obs::clearTrace();
        ObsGuard guard(true, true);
        core::HwPrNas model(mc, nasbench::DatasetId::Cifar10, 5);
        model.train(trainRecs, valRecs, hw::PlatformId::EdgeGpu, tc);
        onLosses = model.valLossHistory();
        onScores = model.scoreBatch(valArchs);
    }

    ASSERT_EQ(offLosses.size(), onLosses.size());
    for (std::size_t i = 0; i < offLosses.size(); ++i)
        EXPECT_EQ(offLosses[i], onLosses[i]) << "epoch " << i;
    ASSERT_EQ(offScores.size(), onScores.size());
    for (std::size_t i = 0; i < offScores.size(); ++i)
        EXPECT_EQ(offScores[i], onScores[i]) << "arch " << i;

    // The instrumented fit must actually have recorded: epoch spans
    // in the trace, epoch timings and loss gauges in the registry.
    const std::string json = obs::traceJson();
    EXPECT_NE(json.find("\"name\": \"hwprnas.fit\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"hwprnas.fit.epoch\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"surrogate.predict_batch\""),
              std::string::npos);
    const obs::Histogram *eh = obs::Registry::global().findHistogram(
        "hwprnas.fit.epoch_us");
    ASSERT_NE(eh, nullptr);
    EXPECT_GE(eh->count(), 2u);
    EXPECT_NE(obs::Registry::global().gaugeValue(
                  "hwprnas.fit.val_loss"),
              0.0);
    obs::clearTrace();
}

namespace
{

/** Tiny shared fixture for the profiler bit-identity tests. */
struct ProfiledFitResult
{
    std::vector<double> losses;
    std::vector<double> scores;
    std::vector<std::vector<double>> searchFitness;
};

ProfiledFitResult
runFitAndSearch(bool profiled)
{
    static nasbench::Oracle oracle(nasbench::DatasetId::Cifar10);
    Rng rng(77);
    const auto data = nasbench::SampledDataset::sample(
        {&nasbench::nasBench201()}, oracle, 120, 80, 40, rng);

    core::HwPrNasConfig mc;
    mc.encoder.gcnHidden = 16;
    mc.encoder.lstmHidden = 16;
    mc.encoder.embedDim = 8;
    core::TrainConfig tc;
    tc.epochs = 2;
    tc.combinerEpochs = 0;

    if (profiled) {
        obs::setProfileIntervalUs(500);
        obs::setProfilingEnabled(true);
    }
    ProfiledFitResult out;
    {
        core::HwPrNas model(mc, nasbench::DatasetId::Cifar10, 5);
        model.train(data.select(data.trainIdx),
                    data.select(data.valIdx), hw::PlatformId::EdgeGpu,
                    tc);
        out.losses = model.valLossHistory();
        std::vector<nasbench::Architecture> valArchs;
        for (const auto *r : data.select(data.valIdx))
            valArchs.push_back(r->arch);
        out.scores = model.scoreBatch(valArchs);

        core::SurrogateEvaluator eval(model);
        search::MoeaConfig smc;
        smc.populationSize = 12;
        smc.maxGenerations = 3;
        smc.simulatedBudgetSeconds = 0.0;
        Rng srng(9);
        out.searchFitness =
            search::Moea(smc)
                .run(search::SearchDomain::unionBenchmarks(), eval,
                     srng)
                .fitness;
    }
    if (profiled) {
        obs::setProfilingEnabled(false);
        obs::clearProfile();
    }
    return out;
}

} // namespace

TEST(ObsDeterminism, SameSeedFitAndSearchIdenticalWithProfilerOn)
{
    // The sampler only *reads* shadow stacks and the steady clock —
    // a profiled run must be bit-identical to an unprofiled one,
    // through both fit and a full surrogate-guided search.
    ASSERT_FALSE(obs::profilingEnabled());
    const ProfiledFitResult off = runFitAndSearch(false);
    const ProfiledFitResult on = runFitAndSearch(true);

    ASSERT_EQ(off.losses.size(), on.losses.size());
    for (std::size_t i = 0; i < off.losses.size(); ++i)
        EXPECT_EQ(off.losses[i], on.losses[i]) << "epoch " << i;
    ASSERT_EQ(off.scores.size(), on.scores.size());
    for (std::size_t i = 0; i < off.scores.size(); ++i)
        EXPECT_EQ(off.scores[i], on.scores[i]) << "arch " << i;
    ASSERT_EQ(off.searchFitness.size(), on.searchFitness.size());
    for (std::size_t i = 0; i < off.searchFitness.size(); ++i) {
        ASSERT_EQ(off.searchFitness[i].size(),
                  on.searchFitness[i].size());
        for (std::size_t j = 0; j < off.searchFitness[i].size(); ++j)
            EXPECT_EQ(off.searchFitness[i][j], on.searchFitness[i][j])
                << "individual " << i << " objective " << j;
    }
}

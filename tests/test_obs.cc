/**
 * @file
 * Observability-layer tests: histogram bucket math, counter
 * correctness under parallelFor contention, span nesting and thread
 * attribution in the exported Chrome trace JSON, the disabled path
 * recording nothing, and a same-seed fit being bit-identical with
 * tracing + metrics on vs off.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/obs.h"
#include "common/rng.h"
#include "common/threadpool.h"
#include "core/hwprnas.h"
#include "nasbench/dataset.h"

using namespace hwpr;

namespace
{

/** RAII toggle restoring both collection switches. */
class ObsGuard
{
  public:
    ObsGuard(bool tracing, bool metrics)
        : savedTracing_(obs::tracingEnabled()),
          savedMetrics_(obs::metricsEnabled())
    {
        obs::setTracingEnabled(tracing);
        obs::setMetricsEnabled(metrics);
    }

    ~ObsGuard()
    {
        obs::setTracingEnabled(savedTracing_);
        obs::setMetricsEnabled(savedMetrics_);
    }

  private:
    bool savedTracing_;
    bool savedMetrics_;
};

/** Occurrences of @p needle in @p text. */
std::size_t
countOf(const std::string &text, const std::string &needle)
{
    std::size_t n = 0;
    for (auto at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + needle.size()))
        ++n;
    return n;
}

} // namespace

TEST(ObsHistogram, BucketMath)
{
    obs::Histogram h({1.0, 10.0, 100.0});
    // Bounds are inclusive upper bounds; 4 buckets total (3 + over).
    h.record(0.5);   // bucket 0
    h.record(1.0);   // bucket 0 (inclusive)
    h.record(1.5);   // bucket 1
    h.record(10.0);  // bucket 1
    h.record(99.0);  // bucket 2
    h.record(100.5); // overflow
    h.record(1e9);   // overflow

    EXPECT_EQ(h.count(), 7u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 2u);
    EXPECT_DOUBLE_EQ(h.sum(),
                     0.5 + 1.0 + 1.5 + 10.0 + 99.0 + 100.5 + 1e9);
    EXPECT_DOUBLE_EQ(h.mean(), h.sum() / 7.0);

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(h.bucketCount(i), 0u);
}

TEST(ObsRegistry, FindOrCreateAndSnapshot)
{
    auto &reg = obs::Registry::global();
    obs::Counter &c = reg.counter("test.obs.counter");
    c.reset();
    c.add(3);
    // Same name must resolve to the same metric.
    EXPECT_EQ(&reg.counter("test.obs.counter"), &c);
    EXPECT_EQ(reg.counterValue("test.obs.counter"), 3u);
    EXPECT_EQ(reg.counterValue("test.obs.never_registered"), 0u);

    reg.gauge("test.obs.gauge").set(2.5);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("test.obs.gauge"), 2.5);

    obs::Histogram &h =
        reg.histogram("test.obs.hist", {1.0, 2.0});
    h.reset();
    h.record(1.5);
    EXPECT_EQ(reg.findHistogram("test.obs.hist"), &h);
    EXPECT_EQ(reg.findHistogram("test.obs.nope"), nullptr);

    const std::string json = reg.snapshotJson();
    EXPECT_NE(json.find("\"test.obs.counter\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"test.obs.gauge\": 2.5"), std::string::npos);
    EXPECT_NE(json.find("\"test.obs.hist\""), std::string::npos);
    // The non-empty bucket renders as [upper_bound, count].
    EXPECT_NE(json.find("[2, 1]"), std::string::npos);
}

TEST(ObsCounter, CorrectUnderParallelForContention)
{
    ObsGuard guard(false, true);
    obs::Counter &c =
        obs::Registry::global().counter("test.obs.contended");
    c.reset();
    obs::Histogram &h = obs::Registry::global().histogram(
        "test.obs.contended_hist", {1e12});
    h.reset();

    constexpr std::size_t kIters = 20000;
    ExecContext::global().pool->parallelFor(
        0, kIters, 1, [&](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) {
                c.add();
                h.record(1.0);
            }
        });
    EXPECT_EQ(c.value(), kIters);
    EXPECT_EQ(h.count(), kIters);
    EXPECT_EQ(h.bucketCount(0), kIters);
    EXPECT_DOUBLE_EQ(h.sum(), double(kIters));
}

TEST(ObsTrace, SpanNestingAndThreadAttribution)
{
    obs::clearTrace();
    ObsGuard guard(true, false);
    obs::setThreadName("test-main");

    {
        HWPR_SPAN("outer", {{"x", 1.0}});
        {
            HWPR_SPAN("inner");
        }
        // parallelFor may fan chunks out to pool workers or run the
        // whole range inline (single-thread pool); either way every
        // invocation records into the calling thread's own buffer.
        ExecContext::global().pool->parallelFor(
            0, 4, 1, [&](std::size_t, std::size_t) {
                HWPR_SPAN("chunk");
            });
    }
    // A span from an explicit second thread must land in a separate
    // per-thread buffer and render in its own tid lane.
    std::thread([] {
        obs::setThreadName("test-worker");
        HWPR_SPAN("worker_span");
    }).join();

    EXPECT_GE(obs::traceEventCount(), 4u);
    const std::string json = obs::traceJson();

    // Parseable header/footer and metadata for the named threads.
    EXPECT_NE(json.find("{\"traceEvents\": ["), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"test-main\""), std::string::npos);
    EXPECT_NE(json.find("\"test-worker\""), std::string::npos);

    // Complete events with our names and the span attribute.
    EXPECT_EQ(countOf(json, "\"name\": \"outer\""), 1u);
    EXPECT_EQ(countOf(json, "\"name\": \"inner\""), 1u);
    EXPECT_GE(countOf(json, "\"name\": \"chunk\""), 1u);
    EXPECT_EQ(countOf(json, "\"name\": \"worker_span\""), 1u);
    EXPECT_NE(json.find("\"args\": {\"x\": 1"), std::string::npos);

    // Nesting: inner's [ts, ts+dur] interval must sit inside outer's.
    auto field = [&](const std::string &name, const char *key) {
        const auto at = json.find("\"name\": \"" + name + "\"");
        EXPECT_NE(at, std::string::npos);
        const std::string k = std::string("\"") + key + "\": ";
        const auto kp = json.find(k, at);
        EXPECT_NE(kp, std::string::npos);
        return std::strtod(json.c_str() + kp + k.size(), nullptr);
    };
    const double outer_ts = field("outer", "ts");
    const double outer_end = outer_ts + field("outer", "dur");
    const double inner_ts = field("inner", "ts");
    const double inner_end = inner_ts + field("inner", "dur");
    EXPECT_GE(inner_ts, outer_ts);
    EXPECT_LE(inner_end, outer_end);

    // Thread attribution: outer and worker_span carry different tids
    // (tid precedes name within an event, so search backwards).
    auto tidOf = [&](const std::string &name) {
        const auto at = json.find("\"name\": \"" + name + "\"");
        EXPECT_NE(at, std::string::npos);
        const std::string k = "\"tid\": ";
        const auto kp = json.rfind(k, at);
        EXPECT_NE(kp, std::string::npos);
        return std::strtod(json.c_str() + kp + k.size(), nullptr);
    };
    EXPECT_NE(tidOf("outer"), tidOf("worker_span"));

    obs::clearTrace();
}

TEST(ObsTrace, SpanArgAttachesLateAttributes)
{
    obs::clearTrace();
    ObsGuard guard(true, false);
    {
        obs::Span span("late_args", {{"known", 1.0}});
        span.arg("late", 42.0);
        span.arg("known", 2.0); // overwrite
    }
    const std::string json = obs::traceJson();
    EXPECT_NE(json.find("\"late\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"known\": 2"), std::string::npos);
    EXPECT_EQ(json.find("\"known\": 1,"), std::string::npos);
    obs::clearTrace();
}

TEST(ObsDisabled, RecordsNothing)
{
    obs::clearTrace();
    ObsGuard guard(false, false);

    const std::size_t events_before = obs::traceEventCount();
    obs::Counter &c =
        obs::Registry::global().counter("test.obs.disabled");
    c.reset();
    obs::Histogram &h = obs::Registry::global().histogram(
        "test.obs.disabled_hist", {1.0});
    h.reset();

    {
        HWPR_SPAN("must_not_record", {{"x", 1.0}});
        obs::ScopedTimer timer(h); // disabled at construction
        // Guarded sites skip the registry entirely when disabled; the
        // obs-instrumented code under test follows this pattern.
        if (obs::metricsEnabled())
            c.add();
    }

    EXPECT_EQ(obs::traceEventCount(), events_before);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.count(), 0u);
}

TEST(ObsDeterminism, SameSeedFitIdenticalWithObsOnVsOff)
{
    // Recording only reads the steady clock: a same-seed fit with
    // tracing + metrics armed must produce a bit-identical loss
    // trajectory and scores.
    static nasbench::Oracle oracle(nasbench::DatasetId::Cifar10);
    Rng rng(77);
    const auto data = nasbench::SampledDataset::sample(
        {&nasbench::nasBench201()}, oracle, 120, 80, 40, rng);

    core::HwPrNasConfig mc;
    mc.encoder.gcnHidden = 16;
    mc.encoder.lstmHidden = 16;
    mc.encoder.embedDim = 8;

    core::TrainConfig tc;
    tc.epochs = 2;
    tc.combinerEpochs = 0;

    const auto trainRecs = data.select(data.trainIdx);
    const auto valRecs = data.select(data.valIdx);
    std::vector<nasbench::Architecture> valArchs;
    for (const auto *r : valRecs)
        valArchs.push_back(r->arch);

    std::vector<double> offLosses, onLosses;
    std::vector<double> offScores, onScores;
    {
        ObsGuard guard(false, false);
        core::HwPrNas model(mc, nasbench::DatasetId::Cifar10, 5);
        model.train(trainRecs, valRecs, hw::PlatformId::EdgeGpu, tc);
        offLosses = model.valLossHistory();
        offScores = model.scoreBatch(valArchs);
    }
    {
        obs::clearTrace();
        ObsGuard guard(true, true);
        core::HwPrNas model(mc, nasbench::DatasetId::Cifar10, 5);
        model.train(trainRecs, valRecs, hw::PlatformId::EdgeGpu, tc);
        onLosses = model.valLossHistory();
        onScores = model.scoreBatch(valArchs);
    }

    ASSERT_EQ(offLosses.size(), onLosses.size());
    for (std::size_t i = 0; i < offLosses.size(); ++i)
        EXPECT_EQ(offLosses[i], onLosses[i]) << "epoch " << i;
    ASSERT_EQ(offScores.size(), onScores.size());
    for (std::size_t i = 0; i < offScores.size(); ++i)
        EXPECT_EQ(offScores[i], onScores[i]) << "arch " << i;

    // The instrumented fit must actually have recorded: epoch spans
    // in the trace, epoch timings and loss gauges in the registry.
    const std::string json = obs::traceJson();
    EXPECT_NE(json.find("\"name\": \"hwprnas.fit\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"hwprnas.fit.epoch\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"surrogate.predict_batch\""),
              std::string::npos);
    const obs::Histogram *eh = obs::Registry::global().findHistogram(
        "hwprnas.fit.epoch_us");
    ASSERT_NE(eh, nullptr);
    EXPECT_GE(eh->count(), 2u);
    EXPECT_NE(obs::Registry::global().gaugeValue(
                  "hwprnas.fit.val_loss"),
              0.0);
    obs::clearTrace();
}

/**
 * @file
 * Tests for the hwpr CLI argument parser.
 */

#include <gtest/gtest.h>

#include "tools/argparse.h"

using hwpr::tools::Args;

namespace
{

Args
parseOf(std::vector<std::string> tokens)
{
    std::vector<char *> argv = {const_cast<char *>("hwpr")};
    for (auto &t : tokens)
        argv.push_back(t.data());
    return Args::parse(int(argv.size()), argv.data());
}

} // namespace

TEST(Argparse, SubcommandAndOptions)
{
    auto args = parseOf({"sample", "--count", "5", "--space",
                         "fbnet"});
    EXPECT_EQ(args.command(), "sample");
    EXPECT_EQ(args.getInt("count", 0), 5);
    EXPECT_EQ(args.get("space"), "fbnet");
}

TEST(Argparse, DefaultsWhenMissing)
{
    auto args = parseOf({"train"});
    EXPECT_EQ(args.getInt("epochs", 40), 40);
    EXPECT_EQ(args.get("dataset", "cifar10"), "cifar10");
    EXPECT_DOUBLE_EQ(args.getDouble("lr", 1e-3), 1e-3);
    EXPECT_FALSE(args.has("out"));
}

TEST(Argparse, BooleanFlags)
{
    auto args = parseOf({"search", "--verbose", "--pop", "30"});
    EXPECT_TRUE(args.has("verbose"));
    EXPECT_EQ(args.get("verbose"), "1");
    EXPECT_EQ(args.getInt("pop", 0), 30);
}

TEST(Argparse, TrailingFlag)
{
    auto args = parseOf({"sample", "--quick"});
    EXPECT_TRUE(args.has("quick"));
}

TEST(Argparse, NoSubcommand)
{
    auto args = parseOf({"--help"});
    EXPECT_TRUE(args.command().empty());
    EXPECT_TRUE(args.has("help"));
}

TEST(Argparse, DoubleValues)
{
    auto args = parseOf({"train", "--lr", "0.0025"});
    EXPECT_DOUBLE_EQ(args.getDouble("lr", 0.0), 0.0025);
}
